package pipeline

import (
	"context"
	"fmt"

	"repro/internal/adversarial"
	"repro/internal/dataset"
	"repro/internal/fairrank"
	"repro/internal/ifair"
	"repro/internal/knn"
	"repro/internal/lfr"
	"repro/internal/linmodel"
	"repro/internal/metrics"
)

// Fig2Cell is one panel annotation of Fig. 2: the classifier metrics on
// one synthetic-data variant under one representation.
type Fig2Cell struct {
	Variant string
	Method  string

	Acc, YNN, Parity, EqOpp float64
}

// Fig2Study reproduces the synthetic properties study of Sec. IV: for each
// protected-attribute variant, a logistic classifier is trained on (a) the
// original data, (b) the iFair representation and (c) the LFR
// representation, with hyper-parameters grid-searched for the best
// individual fairness of the classifier, and the four panel metrics are
// reported. As in the paper's illustration, the model is fit and evaluated
// on the full 100-point sample.
//
// Fig2Study is a convenience wrapper around Fig2StudyContext with a
// background context.
func Fig2Study(cfg StudyConfig) ([]Fig2Cell, error) {
	return Fig2StudyContext(context.Background(), cfg)
}

// Fig2StudyContext is Fig2Study with cancellation: the grid search aborts
// with ctx.Err() once ctx is cancelled.
func Fig2StudyContext(ctx context.Context, cfg StudyConfig) ([]Fig2Cell, error) {
	cfg.fill()
	// The study is tiny (100 points, K = 4), so always search the paper's
	// full mixture grid of Sec. IV/V-B rather than the trimmed study grid.
	grid := []float64{0, 0.05, 0.1, 1, 10, 100}
	var cells []Fig2Cell
	for _, variant := range []dataset.MixtureVariant{
		dataset.VariantRandom, dataset.VariantCorrelatedX1, dataset.VariantCorrelatedX2,
	} {
		ds := dataset.SyntheticMixture(variant, 100, cfg.Seed)
		all := allIndices(ds.Rows())
		neighbours := knn.NewIndex(ds.NonProtectedX()).AllNeighbors(10)

		evalRep := func(rep Representation) (Fig2Cell, error) {
			if err := rep.Fit(ctx, ds.Subset(all)); err != nil {
				return Fig2Cell{}, err
			}
			clf, err := linmodel.FitLogistic(rep.Transform(ds.X), ds.Label, cfg.L2)
			if err != nil {
				return Fig2Cell{}, err
			}
			pred := clf.PredictProba(rep.Transform(ds.X))
			return Fig2Cell{
				Variant: variant.String(),
				Method:  rep.Name(),
				Acc:     metrics.Accuracy(pred, ds.Label),
				YNN:     metrics.Consistency(pred, neighbours),
				Parity:  metrics.StatisticalParity(hardPred(pred), ds.Protected),
				EqOpp:   metrics.EqualOpportunity(pred, ds.Label, ds.Protected),
			}, nil
		}

		cell, err := evalRep(FullData{})
		if err != nil {
			return nil, fmt.Errorf("fig2 %s full data: %w", variant, err)
		}
		cell.Method = "original"
		cells = append(cells, cell)

		// iFair: small prototype counts suit the 3-attribute data; tune
		// for the best consistency as the paper does.
		var bestIFair *Fig2Cell
		for _, lambda := range grid {
			for _, mu := range grid {
				if lambda == 0 && mu == 0 {
					continue
				}
				// The per-config fit error is tolerated below, so check the
				// context explicitly or a cancellation would be swallowed.
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				cell, err := evalRep(&IFairRep{Opts: ifair.Options{
					K: 4, Lambda: lambda, Mu: mu,
					Init: ifair.InitMaskedProtected, Fairness: ifair.PairwiseFairness,
					Restarts: cfg.Restarts, MaxIterations: cfg.MaxIterations, Seed: cfg.Seed,
					Workers: cfg.Workers, Trace: cfg.Trace,
				}})
				if err != nil {
					continue
				}
				if bestIFair == nil || cell.YNN > bestIFair.YNN {
					cp := cell
					cp.Method = "iFair"
					bestIFair = &cp
				}
			}
		}
		if bestIFair == nil {
			return nil, fmt.Errorf("fig2 %s: no iFair configuration fitted", variant)
		}
		cells = append(cells, *bestIFair)

		var bestLFR *Fig2Cell
		for _, az := range grid {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cell, err := evalRep(&LFRRep{Opts: lfr.Options{
				K: 4, Az: az, Ax: 1, Ay: 1,
				Restarts: cfg.Restarts, MaxIterations: cfg.MaxIterations, Seed: cfg.Seed,
				Workers: cfg.Workers, Trace: cfg.Trace,
			}})
			if err != nil {
				continue
			}
			if bestLFR == nil || cell.YNN > bestLFR.YNN {
				cp := cell
				cp.Method = "LFR"
				bestLFR = &cp
			}
		}
		if bestLFR == nil {
			return nil, fmt.Errorf("fig2 %s: no LFR configuration fitted", variant)
		}
		cells = append(cells, *bestLFR)
	}
	return cells, nil
}

// AdversarialCell is one bar of Fig. 4: the accuracy of a logistic
// adversary predicting protected-group membership from a representation.
type AdversarialCell struct {
	Dataset string
	Method  string
	// Accuracy of the adversary on held-out records (lower is better).
	Accuracy float64
}

// AdversarialStudy reproduces Fig. 4 on one dataset: it trains a logistic
// adversary to recover the protected attribute from (i) masked data,
// (ii) the LFR representation (classification datasets only) and (iii) the
// iFair-b representation, reporting held-out accuracy.
//
// AdversarialStudy is a convenience wrapper around
// AdversarialStudyContext with a background context.
func AdversarialStudy(ds *dataset.Dataset, cfg StudyConfig) ([]AdversarialCell, error) {
	return AdversarialStudyContext(context.Background(), ds, cfg)
}

// AdversarialStudyContext is AdversarialStudy with cancellation.
func AdversarialStudyContext(ctx context.Context, ds *dataset.Dataset, cfg StudyConfig) ([]AdversarialCell, error) {
	cfg.fill()
	split, err := dataset.ThreeWaySplit(ds.Rows(), cfg.TrainFrac, cfg.ValFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	train := ds.Subset(split.Train)
	test := ds.Subset(split.Test)

	var cells []AdversarialCell
	probe := func(rep Representation) error {
		if err := rep.Fit(ctx, train); err != nil {
			return err
		}
		adv, err := linmodel.FitLogistic(rep.Transform(train.X), train.Protected, cfg.L2)
		if err != nil {
			return err
		}
		pred := adv.PredictProba(rep.Transform(test.X))
		cells = append(cells, AdversarialCell{
			Dataset:  ds.Name,
			Method:   rep.Name(),
			Accuracy: metrics.Accuracy(pred, test.Protected),
		})
		return nil
	}

	if err := probe(&MaskedData{}); err != nil {
		return nil, err
	}
	if ds.Task == dataset.Classification {
		if err := probe(&LFRRep{Opts: lfr.Options{
			K: cfg.K[0], Az: 1, Ax: 1, Ay: 1,
			Restarts: cfg.Restarts, MaxIterations: cfg.MaxIterations, Seed: cfg.Seed,
			Workers: cfg.Workers, Trace: cfg.Trace,
		}}); err != nil {
			return nil, err
		}
	}
	if err := probe(&IFairRep{Opts: ifair.Options{
		K: cfg.K[0], Lambda: 1, Mu: 1,
		Init: ifair.InitMaskedProtected, Fairness: ifair.SampledFairness,
		Restarts: cfg.Restarts, MaxIterations: cfg.MaxIterations, Seed: cfg.Seed,
		Workers: cfg.Workers, Trace: cfg.Trace,
	}}); err != nil {
		return nil, err
	}
	// Extension comparator: the censored-representation baseline of the
	// paper's Related Work, which optimises obfuscation directly.
	if err := probe(&CensoredRep{Opts: adversarial.Options{Seed: cfg.Seed, Trace: cfg.Trace}}); err != nil {
		return nil, err
	}
	return cells, nil
}

// PostProcessPoint is one x-position of Fig. 5: FA*IR applied to iFair
// representations at target proportion P.
type PostProcessPoint struct {
	P                  float64
	MAP, YNN, PctInTop float64
}

// PostProcessStudy reproduces Fig. 5 on one ranking dataset: an iFair-b
// representation is fitted once, a linear regressor produces "fair scores",
// and FA*IR re-ranks each test query for a sweep of target proportions p,
// demonstrating that group-fairness constraints can be enforced post-hoc on
// individually fair representations.
//
// PostProcessStudy is a convenience wrapper around
// PostProcessStudyContext with a background context.
func PostProcessStudy(ds *dataset.Dataset, cfg StudyConfig, ps []float64) ([]PostProcessPoint, error) {
	return PostProcessStudyContext(context.Background(), ds, cfg, ps)
}

// PostProcessStudyContext is PostProcessStudy with cancellation.
func PostProcessStudyContext(ctx context.Context, ds *dataset.Dataset, cfg StudyConfig, ps []float64) ([]PostProcessPoint, error) {
	cfg.fill()
	qsplit, err := dataset.SplitQueries(len(ds.Queries), cfg.TrainFrac, cfg.ValFrac, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep := ifairBRep(cfg)
	trainRows := queryRows(ds, qsplit.Train)
	train := ds.Subset(trainRows)
	if err := rep.Fit(ctx, train); err != nil {
		return nil, err
	}
	reg, err := linmodel.FitLinear(rep.Transform(train.X), train.Score, cfg.L2)
	if err != nil {
		return nil, err
	}
	allPred := reg.Predict(rep.Transform(ds.X))
	lo, hi := bounds(ds.Score)

	var points []PostProcessPoint
	for _, p := range ps {
		var qm queryMetrics
		for _, qi := range qsplit.Test {
			q := ds.Queries[qi]
			pred := make([]float64, len(q.Rows))
			prot := make([]bool, len(q.Rows))
			for i, r := range q.Rows {
				pred[i] = allPred[r]
				prot[i] = ds.Protected[r]
			}
			rr, err := fairrank.ReRank(pred, prot, 0, p, 0.1)
			if err != nil {
				return nil, err
			}
			fair := make([]float64, len(q.Rows))
			for rank, cand := range rr.Ranking {
				fair[cand] = rr.FairScores[rank]
			}
			qm.add(scoreQuery(ds, q, fair, normaliseWith(fair, lo, hi)))
		}
		mapAt, _, ynn, pct := qm.averages()
		points = append(points, PostProcessPoint{P: p, MAP: mapAt, YNN: ynn, PctInTop: pct})
	}
	return points, nil
}

// Table4Row is one row of the weight-sensitivity study on Xing.
type Table4Row struct {
	Weights dataset.XingWeights
	// BaseRateProtected is the protected share of the candidate pool (%).
	BaseRateProtected          float64
	MAP, KT, YNN, PctProtected float64
}

// Table4 reproduces the paper's Table IV: iFair-b rankings on the Xing
// dataset under the paper's seven ranking-score weight combinations.
//
// Table4 is a convenience wrapper around Table4Context with a background
// context.
func Table4(cfg StudyConfig, weightRows []dataset.XingWeights) ([]Table4Row, error) {
	return Table4Context(context.Background(), cfg, weightRows)
}

// Table4Context is Table4 with cancellation.
func Table4Context(ctx context.Context, cfg StudyConfig, weightRows []dataset.XingWeights) ([]Table4Row, error) {
	cfg.fill()
	if len(weightRows) == 0 {
		// The seven combinations reported in Table IV.
		weightRows = []dataset.XingWeights{
			{Work: 0, Education: 0.5, Views: 1},
			{Work: 0.25, Education: 0.75, Views: 0},
			{Work: 0.5, Education: 1, Views: 0.25},
			{Work: 0.75, Education: 0, Views: 0.5},
			{Work: 0.75, Education: 0.25, Views: 0},
			{Work: 1, Education: 0.25, Views: 0.75},
			{Work: 1, Education: 1, Views: 1},
		}
	}
	var rows []Table4Row
	for _, w := range weightRows {
		ds := dataset.Xing(w, dataset.RankingConfig{Seed: cfg.Seed})
		qsplit, err := dataset.SplitQueries(len(ds.Queries), cfg.TrainFrac, cfg.ValFrac, cfg.Seed)
		if err != nil {
			return nil, err
		}
		rep := ifairBRep(cfg)
		res, err := EvalRankingContext(ctx, ds, qsplit, rep, cfg.L2)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Weights:      w,
			MAP:          res.MAP,
			KT:           res.KT,
			YNN:          res.YNN,
			PctProtected: res.PctProtected,
		}
		var prot int
		for _, p := range ds.Protected {
			if p {
				prot++
			}
		}
		row.BaseRateProtected = 100 * float64(prot) / float64(ds.Rows())
		rows = append(rows, row)
	}
	return rows, nil
}

func allIndices(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
