package pipeline

import (
	"context"
	"fmt"
	"math"

	"repro/internal/dataset"
)

// RepeatSummary aggregates one method's headline metrics across repeated
// runs with different seeds (fresh data simulation, fresh split, fresh
// initialisation). The paper reports best-of-3 single numbers; this
// extension quantifies run-to-run variance, which any reproduction should
// surface.
type RepeatSummary struct {
	Method           string
	Runs             int
	MeanAUC, StdAUC  float64
	MeanYNN, StdYNN  float64
	MeanParity       float64
	MeanEqOpp        float64
	FailedRuns       int
	LastFailedReason string
}

// RepeatStudy evaluates Full Data and iFair-b on freshly simulated data
// for every seed and reports mean ± std of the headline metrics.
//
// RepeatStudy is a convenience wrapper around RepeatStudyContext with a
// background context.
func RepeatStudy(gen func(seed int64) *dataset.Dataset, cfg StudyConfig, seeds []int64) ([]RepeatSummary, error) {
	return RepeatStudyContext(context.Background(), gen, cfg, seeds)
}

// RepeatStudyContext is RepeatStudy with cancellation: the seed loop
// aborts with ctx.Err() once ctx is cancelled.
func RepeatStudyContext(ctx context.Context, gen func(seed int64) *dataset.Dataset, cfg StudyConfig, seeds []int64) ([]RepeatSummary, error) {
	cfg.fill()
	if len(seeds) == 0 {
		return nil, fmt.Errorf("pipeline: RepeatStudy needs at least one seed")
	}
	type sample struct{ auc, ynn, parity, eqopp float64 }
	collected := map[string][]sample{}
	failures := map[string]int{}
	reasons := map[string]string{}

	for _, seed := range seeds {
		// Per-run failures are tolerated, so check the context explicitly
		// or a cancellation would be recorded as a failed run.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		runCfg := cfg
		runCfg.Seed = seed
		ds := gen(seed)
		split, err := dataset.ThreeWaySplit(ds.Rows(), runCfg.TrainFrac, runCfg.ValFrac, seed)
		if err != nil {
			return nil, err
		}
		for _, rep := range []Representation{FullData{}, ifairBRep(runCfg)} {
			res, err := EvalClassificationContext(ctx, ds, split, rep, runCfg.L2)
			if err != nil {
				failures[rep.Name()]++
				reasons[rep.Name()] = err.Error()
				continue
			}
			collected[rep.Name()] = append(collected[rep.Name()], sample{res.AUC, res.YNN, res.Parity, res.EqOpp})
		}
	}

	var out []RepeatSummary
	for _, method := range []string{"Full Data", "iFair-b"} {
		samples := collected[method]
		s := RepeatSummary{
			Method:           method,
			Runs:             len(samples),
			FailedRuns:       failures[method],
			LastFailedReason: reasons[method],
		}
		if len(samples) > 0 {
			var aucs, ynns []float64
			for _, sm := range samples {
				aucs = append(aucs, sm.auc)
				ynns = append(ynns, sm.ynn)
				s.MeanParity += sm.parity
				s.MeanEqOpp += sm.eqopp
			}
			s.MeanAUC, s.StdAUC = meanStd(aucs)
			s.MeanYNN, s.StdYNN = meanStd(ynns)
			s.MeanParity /= float64(len(samples))
			s.MeanEqOpp /= float64(len(samples))
		}
		out = append(out, s)
	}
	return out, nil
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	for _, x := range xs {
		d := x - mean
		std += d * d
	}
	return mean, math.Sqrt(std / float64(len(xs)))
}
