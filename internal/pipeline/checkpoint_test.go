package pipeline

import (
	"os"
	"path/filepath"
	"testing"
)

// TestTradeoffStudyCheckpointDir pins the study-level crash-safety
// wiring: with CheckpointDir set, every iFair configuration checkpoints
// into its own per-dataset subdirectory, and a rerun of the identical
// study replays from those checkpoints with bit-identical results.
func TestTradeoffStudyCheckpointDir(t *testing.T) {
	ds := smallCompas()
	cfg := quickCfg()
	cfg.CheckpointDir = t.TempDir()

	first, err := TradeoffStudy(ds, cfg)
	if err != nil {
		t.Fatalf("first study: %v", err)
	}

	// One checkpoint directory per (dataset, variant, configuration),
	// each holding at least one snapshot.
	dirs, err := filepath.Glob(filepath.Join(cfg.CheckpointDir, ds.Name, "iFair-*"))
	if err != nil || len(dirs) == 0 {
		t.Fatalf("no per-configuration checkpoint dirs under %s (err %v)", cfg.CheckpointDir, err)
	}
	for _, d := range dirs {
		snaps, _ := filepath.Glob(filepath.Join(d, "snap-*.ckpt"))
		if len(snaps) == 0 {
			t.Fatalf("checkpoint dir %s holds no snapshots", d)
		}
	}

	second, err := TradeoffStudy(ds, cfg)
	if err != nil {
		t.Fatalf("rerun study: %v", err)
	}
	if len(first) != len(second) {
		t.Fatalf("result counts differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		a, b := first[i], second[i]
		if a.Method != b.Method || a.Params != b.Params {
			t.Fatalf("result %d identity differs: %s/%s vs %s/%s", i, a.Method, a.Params, b.Method, b.Params)
		}
		if a.AUC != b.AUC || a.YNN != b.YNN || a.ValidAUC != b.ValidAUC || a.ValidYNN != b.ValidYNN {
			t.Fatalf("result %d (%s %s) not bit-identical on rerun: AUC %v/%v yNN %v/%v",
				i, a.Method, a.Params, a.AUC, b.AUC, a.YNN, b.YNN)
		}
	}
}

// TestTradeoffStudyCheckpointDirUnwritable surfaces setup errors instead
// of silently training without durability.
func TestTradeoffStudyCheckpointDirUnwritable(t *testing.T) {
	if os.Geteuid() == 0 {
		t.Skip("running as root: directory permissions are not enforced")
	}
	base := t.TempDir()
	if err := os.Chmod(base, 0o500); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chmod(base, 0o700) })
	cfg := quickCfg()
	cfg.CheckpointDir = filepath.Join(base, "ckpt")
	if _, err := TradeoffStudy(smallCompas(), cfg); err == nil {
		t.Fatal("unwritable checkpoint dir reported no error")
	}
}
