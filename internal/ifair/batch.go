package ifair

import (
	"repro/internal/mat"
)

// batchState is the mini-batch evaluation scratch. Where the full
// objective keeps five M-row matrices, the batch path keeps the same
// five matrices sized to the largest evaluation list it has seen — the
// batch records plus the partners of the fairness pairs they own — so
// memory stays flat in the dataset size. Everything here is allocated
// once, on the first EvalBatch (the SGD warm-up), at the worst-case list
// length; after that an epoch runs without a single M-sized allocation.
type batchState struct {
	// ownOff is the CSR ownership index into objective.pairs: record i
	// owns pairs[ownOff[i]:ownOff[i+1]] (every builder emits pairs in
	// non-decreasing pair.i order). Each pair is owned by exactly one
	// record, so summing the batch sub-objectives of one epoch counts
	// every utility term and every pair term exactly once.
	ownOff []int32
	// pos maps a record index to its position in the current evaluation
	// list, −1 when absent. M entries of int32 — the one dataset-sized
	// buffer the batch path keeps, reset to −1 after every evaluation by
	// walking the list.
	pos []int32
	// list is the evaluation list: the batch records first, then the
	// deduplicated partner records of their owned pairs.
	list []int

	// Per-evaluation-row forward state, capRows rows each.
	u, raw, gval *mat.Dense // memberships, raw distances, kernel weights
	xt, g        *mat.Dense // transforms and upstream gradients
	capRows      int

	q []float64 // K-sized backward scratch
}

// Items implements optimize.BatchObjective: the decomposable work items
// are the records.
func (o *objective) Items() int { return o.m }

// ensureBatch builds the batch evaluation state on first use. batchLen
// is the current batch length; the first SGD evaluation uses the full
// configured batch size, so the worst-case list length — batch records
// plus each record's maximum owned-pair count — is known at warm-up.
func (o *objective) ensureBatch(batchLen int) *batchState {
	if o.batch != nil {
		return o.batch
	}
	b := &batchState{q: make([]float64, o.opts.K)}
	b.ownOff = make([]int32, o.m+1)
	for _, pr := range o.pairs {
		b.ownOff[pr.i+1]++
	}
	maxOwned := 0
	for i := 0; i < o.m; i++ {
		if c := int(b.ownOff[i+1]); c > maxOwned {
			maxOwned = c
		}
		b.ownOff[i+1] += b.ownOff[i]
	}
	capRows := batchLen * (1 + maxOwned)
	if capRows > o.m {
		capRows = o.m
	}
	if capRows < batchLen {
		capRows = batchLen
	}
	b.capRows = capRows
	b.pos = make([]int32, o.m)
	for i := range b.pos {
		b.pos[i] = -1
	}
	b.list = make([]int, 0, capRows)
	b.u = mat.NewDense(capRows, o.opts.K)
	b.raw = mat.NewDense(capRows, o.opts.K)
	b.gval = mat.NewDense(capRows, o.opts.K)
	b.xt = mat.NewDense(capRows, o.n)
	b.g = mat.NewDense(capRows, o.n)
	o.batch = b
	return b
}

// growBatch re-sizes the per-row matrices when an evaluation list
// outgrows the warm-up estimate (possible only when later batches are
// larger than the first one).
func (o *objective) growBatch(b *batchState, rows int) {
	if rows <= b.capRows {
		return
	}
	b.capRows = rows
	b.u = mat.NewDense(rows, o.opts.K)
	b.raw = mat.NewDense(rows, o.opts.K)
	b.gval = mat.NewDense(rows, o.opts.K)
	b.xt = mat.NewDense(rows, o.n)
	b.g = mat.NewDense(rows, o.n)
}

// EvalBatch implements optimize.BatchObjective: the sub-objective
//
//	L_B = λ·Σ_{i∈B} ‖x̃_i − x_i‖² + µ·Σ_{p owned by B} (d(x̃_i, x̃_j) − t_p)²
//
// over the batch records B, with its gradient in the packed θ layout.
// Partner records of owned pairs are transformed — the gradient flows
// through both endpoints of every pair — but contribute no utility term,
// so summing L_B over one epoch's batches counts each term of Def. 9
// exactly once. The evaluation runs serially: batches are small, the
// restart pool provides the coarse-grained parallelism, and a serial
// pass is trivially bit-identical for every Workers value (the
// internal/par contract the full-objective path guarantees by chunk
// ordering).
func (o *objective) EvalBatch(batch []int, theta, grad []float64) float64 {
	b := o.ensureBatch(len(batch))
	alpha, protos := o.decode(theta)
	for i := range grad {
		grad[i] = 0
	}
	gradA := grad[:o.n]
	gradV := grad[o.n:]

	// Assemble the evaluation list: batch rows, then unseen partners.
	list := b.list[:0]
	for _, i := range batch {
		b.pos[i] = int32(len(list))
		list = append(list, i)
	}
	withFair := o.opts.Mu > 0 && len(o.pairs) > 0
	if withFair {
		for _, i := range batch {
			for p := b.ownOff[i]; p < b.ownOff[i+1]; p++ {
				j := o.pairs[p].j
				if b.pos[j] < 0 {
					b.pos[j] = int32(len(list))
					list = append(list, j)
				}
			}
		}
	}
	b.list = list
	o.growBatch(b, len(list))

	// Forward: memberships and transforms for every listed row; utility
	// loss and gradient only for the batch-owned prefix.
	var loss float64
	for e, rec := range list {
		loss += o.forwardRecord(alpha, protos, o.x.Row(rec),
			b.u.Row(e), b.raw.Row(e), b.gval.Row(e), b.xt.Row(e), b.g.Row(e),
			e < len(batch))
	}

	// Fairness terms of the owned pairs, accumulating the upstream
	// gradient into both endpoints' g rows.
	if withFair {
		mu := o.opts.Mu
		for _, i := range batch {
			for p := b.ownOff[i]; p < b.ownOff[i+1]; p++ {
				pr := o.pairs[p]
				xti := b.xt.Row(int(b.pos[pr.i]))
				xtj := b.xt.Row(int(b.pos[pr.j]))
				d := mat.SqDist(xti, xtj)
				e := d - o.target[p]
				loss += mu * e * e
				w := 4 * mu * e
				gi := b.g.Row(int(b.pos[pr.i]))
				gj := b.g.Row(int(b.pos[pr.j]))
				for n := range xti {
					diff := xti[n] - xtj[n]
					gi[n] += w * diff
					gj[n] -= w * diff
				}
			}
		}
	}

	// Backward through every listed row (partners carry fairness-only
	// upstream gradients), then reset the position map.
	for e, rec := range list {
		o.backwardRecord(alpha, protos, b.q, gradV, gradA,
			o.x.Row(rec), b.u.Row(e), b.raw.Row(e), b.gval.Row(e), b.g.Row(e))
	}
	for _, rec := range list {
		b.pos[rec] = -1
	}

	// Chain through α = a².
	for n := 0; n < o.n; n++ {
		gradA[n] *= 2 * theta[n]
	}
	return loss
}
