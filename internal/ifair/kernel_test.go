package ifair

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestInverseKernelProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	protos := randomData(rng, 4, 3)
	model := &Model{Prototypes: protos, Alpha: []float64{1, 1, 1}, P: 2, Kernel: InverseKernel}
	for trial := 0; trial < 20; trial++ {
		x := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		u := model.Probabilities(x)
		var sum float64
		for _, p := range u {
			if p <= 0 || p > 1 {
				t.Fatalf("probability %v out of (0,1]", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("sum = %v", sum)
		}
	}
}

func TestInverseKernelHeavierTails(t *testing.T) {
	// A record sitting on prototype 0, far from prototype 1: the inverse
	// kernel must keep strictly more mass on the distant prototype than
	// the exponential kernel (polynomial vs exponential decay).
	protos := mat.FromRows([][]float64{{0, 0}, {6, 6}})
	alpha := []float64{1, 1}
	exp := &Model{Prototypes: protos, Alpha: alpha, P: 2, Kernel: ExpKernel}
	inv := &Model{Prototypes: protos, Alpha: alpha, P: 2, Kernel: InverseKernel}
	x := []float64{0, 0}
	if ue, ui := exp.Probabilities(x)[1], inv.Probabilities(x)[1]; ui <= ue {
		t.Fatalf("inverse kernel tail mass %v not above exp kernel %v", ui, ue)
	}
}

func TestFitWithInverseKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomData(rng, 30, 3)
	model, err := Fit(x, Options{K: 3, Lambda: 1, Mu: 1, Kernel: InverseKernel, Seed: 1, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if model.Kernel != InverseKernel {
		t.Fatal("fitted model must record its kernel")
	}
	if math.IsNaN(model.Loss) {
		t.Fatal("NaN loss")
	}
	// Transform must stay inside the prototype hull regardless of kernel.
	xt := model.Transform(x)
	if r, c := xt.Dims(); r != 30 || c != 3 {
		t.Fatalf("transform dims %d×%d", r, c)
	}
}

func TestFitWithGeneralPAndRoot(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomData(rng, 25, 3)
	for _, opts := range []Options{
		{K: 3, Lambda: 1, Mu: 1, P: 1.5, Seed: 1, MaxIterations: 40},
		{K: 3, Lambda: 1, Mu: 1, P: 3, Seed: 1, MaxIterations: 40},
		{K: 3, Lambda: 1, Mu: 1, P: 2, TakeRoot: true, Seed: 1, MaxIterations: 40},
	} {
		model, err := Fit(x, opts)
		if err != nil {
			t.Fatalf("p=%v root=%v: %v", opts.P, opts.TakeRoot, err)
		}
		if math.IsNaN(model.Loss) || model.Loss < 0 {
			t.Fatalf("p=%v root=%v: loss %v", opts.P, opts.TakeRoot, model.Loss)
		}
	}
}

// TestKernelConsistencyTrainingVsInference guards against the training
// forward pass and Model.Probabilities drifting apart: the memberships the
// objective computes at the optimum must match what the fitted model
// reports.
func TestKernelConsistencyTrainingVsInference(t *testing.T) {
	for _, kernel := range []Kernel{ExpKernel, InverseKernel} {
		rng := rand.New(rand.NewSource(4))
		x := randomData(rng, 12, 3)
		opts := Options{K: 3, Lambda: 1, Mu: 0.5, Kernel: kernel, Seed: 9, MaxIterations: 10}
		model, err := Fit(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if err := opts.fill(12, 3); err != nil {
			t.Fatal(err)
		}
		obj := newObjective(x, opts, rand.New(rand.NewSource(1)))
		theta := make([]float64, obj.paramLen())
		for j := 0; j < 3; j++ {
			theta[j] = math.Sqrt(model.Alpha[j])
		}
		copy(theta[3:], model.Prototypes.Data())
		obj.lossOnly(theta)
		for i := 0; i < 12; i++ {
			want := model.Probabilities(x.Row(i))
			got := obj.u.Row(i)
			for kk := range want {
				if math.Abs(want[kk]-got[kk]) > 1e-9 {
					t.Fatalf("kernel %v: membership mismatch at record %d: %v vs %v", kernel, i, got[kk], want[kk])
				}
			}
		}
	}
}

func TestKernelString(t *testing.T) {
	if ExpKernel.String() != "exp" || InverseKernel.String() != "inverse" || Kernel(9).String() != "unknown" {
		t.Fatal("kernel strings wrong")
	}
}
