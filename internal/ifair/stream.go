package ifair

import (
	"context"

	"repro/internal/ingest"
	"repro/internal/knn"
	"repro/internal/mat"
)

// FitStream is FitStreamContext with a background context.
func FitStream(st *ingest.Stream, opts Options) (*Model, *mat.Dense, error) {
	return FitStreamContext(context.Background(), st, opts)
}

// FitStreamContext trains an iFair model directly from a completed shard
// store, replacing the load-everything-then-standardise path for data
// that arrived through internal/ingest:
//
//   - Standardisation uses the store's streaming Welford moments — no
//     full-matrix pass or per-column scratch is needed to compute means
//     and deviations (stats.Standardize's zero-variance convention is
//     preserved: such columns are centred only).
//   - The training matrix is filled in one shard sweep, each shard
//     CRC-verified as it is read; a corrupt shard aborts the fit with
//     ingest.ErrCorrupt rather than training on garbage.
//   - Under NeighborFairness, the kd-tree over the non-protected
//     subspace is built incrementally during the same sweep via
//     knn.Builder, so no second projection copy of the matrix is made.
//
// One standardised M×N matrix is still resident for the optimizer (the
// objective's scratch is BatchSize-bounded when opts.BatchSize > 0);
// everything else — decoding, standardising, neighbour indexing — holds
// O(ShardRows·N). The fitted model matches an in-memory fit over the
// same rows to the precision of the streaming moments.
//
// The returned matrix is the standardised training data, for callers
// that transform the training set after fitting.
func FitStreamContext(ctx context.Context, st *ingest.Stream, opts Options) (*Model, *mat.Dense, error) {
	rows, cols := st.Rows(), st.Cols()
	if rows == 0 || cols == 0 {
		return nil, nil, ErrNoData
	}
	if err := opts.fill(rows, cols); err != nil {
		return nil, nil, err
	}
	means, stds := st.MeanStd()
	for j := range stds {
		if stds[j] == 0 {
			stds[j] = 1
		}
	}

	// The neighbour index is only needed when neighbour pairs will
	// actually be built; it indexes exactly the values
	// nonProtectedMatrix(x, Protected) would hold, so the pair list is
	// bit-identical to the non-streaming build.
	needTree := opts.Fairness == NeighborFairness && opts.Mu > 0 && rows >= 2
	idx := nonProtectedIndices(cols, opts.Protected)
	var builder *knn.Builder
	if needTree && len(idx) < cols {
		builder = knn.NewBuilder(rows, len(idx))
	}

	x := mat.NewDense(rows, cols)
	proj := make([]float64, len(idx))
	err := st.Sweep(func(row int, raw []float64) error {
		dst := x.Row(row)
		for j, v := range raw {
			dst[j] = (v - means[j]) / stds[j]
		}
		if builder != nil {
			for c, j := range idx {
				proj[c] = dst[j]
			}
			builder.Append(proj)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	switch {
	case builder != nil:
		opts.prebuiltNeighbors = builder.Build()
	case needTree:
		// Nothing is protected: the subspace is the matrix itself, so
		// index it directly instead of copying.
		opts.prebuiltNeighbors = knn.NewKDTree(x)
	}

	model, err := FitContext(ctx, x, opts)
	if err != nil {
		return nil, nil, err
	}
	return model, x, nil
}
