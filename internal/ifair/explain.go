package ifair

import (
	"fmt"
	"sort"
)

// AttributeWeight pairs an attribute with its learned distance weight α.
type AttributeWeight struct {
	Name   string
	Index  int
	Weight float64
}

// AttributeWeights returns the learned α per attribute, sorted by
// descending weight — an interpretability view of what the fitted distance
// function considers task-relevant. With iFair-b initialisation, protected
// attributes should appear near the bottom; a protected attribute drifting
// to the top is a red flag worth auditing.
//
// names may be nil (indices are used) or must have length N.
func (m *Model) AttributeWeights(names []string) []AttributeWeight {
	n := m.Dims()
	if names != nil && len(names) != n {
		panic(fmt.Sprintf("ifair: %d names for %d attributes", len(names), n))
	}
	out := make([]AttributeWeight, n)
	for i, a := range m.Alpha {
		name := fmt.Sprintf("attr%d", i)
		if names != nil {
			name = names[i]
		}
		out[i] = AttributeWeight{Name: name, Index: i, Weight: a}
	}
	sort.SliceStable(out, func(a, b int) bool { return out[a].Weight > out[b].Weight })
	return out
}
