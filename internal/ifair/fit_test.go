package ifair

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestFitValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomData(rng, 10, 3)
	cases := []struct {
		name string
		opts Options
	}{
		{"zero K", Options{K: 0, Lambda: 1}},
		{"negative lambda", Options{K: 2, Lambda: -1}},
		{"negative mu", Options{K: 2, Mu: -1}},
		{"protected out of range", Options{K: 2, Lambda: 1, Protected: []int{7}}},
		{"p below 1", Options{K: 2, Lambda: 1, P: 0.5}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Fit(x, tc.opts); err == nil {
				t.Fatal("expected error")
			}
		})
	}
}

func TestFitEmptyData(t *testing.T) {
	if _, err := Fit(mat.NewDense(0, 0), Options{K: 2, Lambda: 1}); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

func TestFitDeterministicWithSeed(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomData(rng, 20, 3)
	opts := Options{K: 2, Lambda: 1, Mu: 0.5, Seed: 42, MaxIterations: 30}
	m1, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(m1.Prototypes, m2.Prototypes, 0) {
		t.Fatal("same seed must give identical prototypes")
	}
	if m1.Loss != m2.Loss {
		t.Fatal("same seed must give identical loss")
	}
}

func TestFitReducesLossVersusInit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomData(rng, 25, 4)
	opts := Options{K: 3, Lambda: 1, Mu: 1, Seed: 7, MaxIterations: 60}
	if err := opts.fill(25, 4); err != nil {
		t.Fatal(err)
	}
	seedRNG := rand.New(rand.NewSource(opts.Seed))
	obj := newObjective(x, opts, seedRNG)
	theta0 := initialTheta(x, opts, seedRNG)
	loss0 := obj.lossOnly(theta0)

	model, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.Loss >= loss0 {
		t.Fatalf("final loss %v not below a random init loss %v", model.Loss, loss0)
	}
}

func TestRestartsPickBest(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomData(rng, 20, 3)
	single, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 1, Seed: 5, MaxIterations: 25})
	if err != nil {
		t.Fatal(err)
	}
	multi, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 1, Seed: 5, MaxIterations: 25, Restarts: 3})
	if err != nil {
		t.Fatal(err)
	}
	if multi.Loss > single.Loss+1e-9 {
		t.Fatalf("best-of-3 loss %v worse than single-run loss %v", multi.Loss, single.Loss)
	}
}

func TestAlphaNonNegative(t *testing.T) {
	model, _ := fittedModel(t, 11)
	for _, a := range model.Alpha {
		if a < 0 {
			t.Fatalf("negative attribute weight %v", a)
		}
	}
}

// TestMaskedInitSuppressesProtectedInfluence is the behavioural core of
// iFair-b: after fitting with near-zero initial weight on the protected
// attribute, flipping that attribute should barely move the
// representation, while flipping a qualification attribute should move it
// much more (Sec. IV, "Influence of Protected Group").
func TestMaskedInitSuppressesProtectedInfluence(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 40, 3
	x := mat.NewDense(m, n)
	for i := 0; i < m; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		x.Set(i, 2, float64(rng.Intn(2))) // protected binary attribute
	}
	model, err := Fit(x, Options{
		K: 4, Lambda: 1, Mu: 0.5,
		Protected: []int{2}, Init: InitMaskedProtected,
		Seed: 9, MaxIterations: 60,
	})
	if err != nil {
		t.Fatal(err)
	}

	var protShift, qualShift float64
	for i := 0; i < m; i++ {
		base := append([]float64(nil), x.Row(i)...)
		tb := model.TransformRow(base)

		flipProt := append([]float64(nil), base...)
		flipProt[2] = 1 - flipProt[2]
		tp := model.TransformRow(flipProt)

		flipQual := append([]float64(nil), base...)
		flipQual[0] += 1
		tq := model.TransformRow(flipQual)

		protShift += math.Sqrt(mat.SqDist(tb, tp))
		qualShift += math.Sqrt(mat.SqDist(tb, tq))
	}
	if protShift >= qualShift {
		t.Fatalf("protected flip moved representation (%v) at least as much as qualification change (%v)", protShift, qualShift)
	}
}

// TestFairnessTermImprovesDistancePreservation checks the paper's central
// claim at unit scale: adding the fairness loss (µ > 0) yields
// representations whose pairwise distances track the masked input distances
// better than a reconstruction-only model (µ = 0) on data where a protected
// attribute distorts the geometry.
func TestFairnessTermImprovesDistancePreservation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := 40
	x := mat.NewDense(m, 3)
	for i := 0; i < m; i++ {
		x.Set(i, 0, rng.NormFloat64())
		x.Set(i, 1, rng.NormFloat64())
		// Protected attribute with a large scale so it dominates naive
		// reconstruction.
		x.Set(i, 2, float64(rng.Intn(2))*4-2)
	}
	base := Options{K: 5, Protected: []int{2}, Seed: 3, MaxIterations: 80, Init: InitMaskedProtected}

	utilOnly := base
	utilOnly.Lambda = 1
	utilOnly.Mu = 0
	mu0, err := Fit(x, utilOnly)
	if err != nil {
		t.Fatal(err)
	}

	withFair := base
	withFair.Lambda = 1
	withFair.Mu = 1
	mu1, err := Fit(x, withFair)
	if err != nil {
		t.Fatal(err)
	}

	evalOpts := base
	evalOpts.Mu = 1
	_, fair0 := Losses(mu0, x, evalOpts)
	_, fair1 := Losses(mu1, x, evalOpts)
	if fair1 >= fair0 {
		t.Fatalf("fairness loss with µ=1 (%v) not below µ=0 (%v)", fair1, fair0)
	}
}

func TestLossesUtilityMatchesManual(t *testing.T) {
	model, x := fittedModel(t, 12)
	util, _ := Losses(model, x, Options{K: model.K(), Lambda: 1, Mu: 0})
	xt := model.Transform(x)
	var want float64
	for i := 0; i < x.Rows(); i++ {
		want += mat.SqDist(x.Row(i), xt.Row(i))
	}
	if math.Abs(util-want) > 1e-9 {
		t.Fatalf("util = %v, want %v", util, want)
	}
}

func TestGradientDescentFallbackConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randomData(rng, 20, 3)
	model, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 0.1, Seed: 1, MaxIterations: 200, UseGradientDescent: true})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.Loss) || model.Loss < 0 {
		t.Fatalf("loss = %v", model.Loss)
	}
}

func TestInitStrategyStrings(t *testing.T) {
	if InitRandom.String() != "iFair-a" || InitMaskedProtected.String() != "iFair-b" {
		t.Fatal("InitStrategy strings wrong")
	}
	if InitStrategy(9).String() != "unknown" {
		t.Fatal("unknown InitStrategy string wrong")
	}
	if PairwiseFairness.String() != "pairwise" || SampledFairness.String() != "sampled" || FairnessMode(9).String() != "unknown" {
		t.Fatal("FairnessMode strings wrong")
	}
}

func TestFitWithNoProtectedAttributes(t *testing.T) {
	// The paper explicitly allows an empty protected set (l = N).
	rng := rand.New(rand.NewSource(9))
	x := randomData(rng, 15, 3)
	model, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 1, Seed: 2, MaxIterations: 30})
	if err != nil {
		t.Fatal(err)
	}
	if model.K() != 2 || model.Dims() != 3 {
		t.Fatalf("model shape %d×%d", model.K(), model.Dims())
	}
}
