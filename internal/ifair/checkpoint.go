package ifair

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
	"math"

	"repro/internal/checkpoint"
	"repro/internal/mat"
	"repro/internal/optimize"
)

// fingerprintTable is shared by every fingerprint computation.
var fingerprintTable = crc64.MakeTable(crc64.ECMA)

// checkpointFingerprint identifies the training problem: every option
// that influences the fitted model plus the training data itself. Two
// runs share a fingerprint exactly when an uninterrupted run would
// produce bit-identical models for both — Workers, RestartWorkers and
// Trace are deliberately excluded (they never change the result), while
// Seed and Restarts are carried separately in the snapshot header.
func checkpointFingerprint(x *mat.Dense, o *Options) string {
	h := crc64.New(fingerprintTable)
	fmt.Fprintf(h, "ifair|k=%d|lambda=%g|mu=%g|prot=%v|init=%d|pinit=%d|nearzero=%g|fair=%d|pairs=%d|neighk=%d|p=%g|root=%t|kernel=%d|numgrad=%t|maxiter=%d|gd=%t|batch=%d|epochs=%d|lr=%g|",
		o.K, o.Lambda, o.Mu, o.Protected, o.Init, o.ProtoInit, o.NearZero,
		o.Fairness, o.PairSamples, o.NeighborK, o.P, o.TakeRoot, o.Kernel,
		o.ForceNumericalGradient, o.MaxIterations, o.UseGradientDescent,
		o.BatchSize, o.Epochs, o.LearnRate)
	// A warm start changes restart 0's trajectory, so its parameters are
	// part of the problem identity: a checkpoint taken without one (or
	// from a different donor model) must not be resumed into it.
	if ws := o.WarmStart; ws != nil {
		fmt.Fprintf(h, "warm=%d,%d|", ws.K(), ws.Dims())
		hashFloats(h, ws.Alpha)
		hashFloats(h, ws.Prototypes.Data())
	} else {
		fmt.Fprint(h, "warm=none|")
	}
	m, n := x.Dims()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], uint64(m)<<32|uint64(uint32(n)))
	h.Write(buf[:])
	hashFloats(h, x.Data())
	return fmt.Sprintf("%016x", h.Sum64())
}

// hashFloats writes a float slice's exact bit patterns into h.
func hashFloats(h io.Writer, xs []float64) {
	var buf [8]byte
	for _, v := range xs {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
}

// packModel flattens a fitted model's learnable parameters — α followed
// by the row-major prototypes — into the vector a checkpoint record
// stores. Storing the model's own parameters (rather than the optimizer's
// packed θ) makes the replayed model bit-identical by construction.
func packModel(m *Model) []float64 {
	out := make([]float64, 0, len(m.Alpha)+len(m.Prototypes.Data()))
	out = append(out, m.Alpha...)
	return append(out, m.Prototypes.Data()...)
}

// unpackModel rebuilds a model from a checkpoint record's vector. It
// returns nil when the vector does not match the run's dimensions — the
// caller then re-runs the restart instead of trusting a bogus record.
func unpackModel(x []float64, n int, opts *Options) *Model {
	k := opts.K
	if len(x) != n+k*n {
		return nil
	}
	protos := mat.NewDense(k, n)
	copy(protos.Data(), x[n:])
	return &Model{
		Prototypes: protos,
		Alpha:      append([]float64(nil), x[:n]...),
		P:          opts.P,
		TakeRoot:   opts.TakeRoot,
		Kernel:     opts.Kernel,
	}
}

// ckptLedger adapts a checkpoint.Manager to optimize.RestartLedger for
// one FitContext call: Lookup replays finished restarts into the models
// slice, Record persists restarts the moment they finish here. Lookup
// and Record are called from the restart pool's goroutines; each restart
// index is touched by exactly one goroutine and the manager itself is
// concurrency-safe, so no extra locking is needed.
type ckptLedger struct {
	mgr    *checkpoint.Manager
	n      int
	opts   *Options
	models []*Model
	iters  []int
}

// Lookup implements optimize.RestartLedger.
func (l *ckptLedger) Lookup(r int) (float64, error, bool) {
	rec, ok := l.mgr.Completed(r)
	if !ok {
		return 0, nil, false
	}
	if rec.Failed {
		l.mgr.Logf("restart %d: replaying recorded failure: %s", r, rec.Error)
		return math.NaN(), errors.New(rec.Error), true
	}
	model := unpackModel(rec.X, l.n, l.opts)
	if model == nil {
		l.mgr.Logf("restart %d: recorded parameters have the wrong shape; re-running", r)
		return 0, nil, false
	}
	model.Loss = rec.Loss
	l.models[r] = model
	l.mgr.Logf("restart %d: resumed from checkpoint (loss %g after %d iterations)", r, rec.Loss, rec.Iterations)
	return rec.Loss, nil, true
}

// Record implements optimize.RestartLedger.
func (l *ckptLedger) Record(r int, loss float64, err error) {
	rec := checkpoint.Restart{
		Index:      r,
		Seed:       optimize.RestartSeed(l.opts.Seed, r),
		Iterations: l.iters[r],
	}
	if err != nil {
		rec.Failed, rec.Error = true, err.Error()
	} else {
		rec.Loss = loss
		rec.X = packModel(l.models[r])
	}
	l.mgr.FinishRestart(rec)
}
