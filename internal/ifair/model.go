package ifair

import (
	"fmt"
	"math"

	"repro/internal/mat"
	"repro/internal/par"
)

// transformScratch recycles the K-length membership scratch slices the
// chunked transform hands each chunk, so repeated batch transforms (the
// serving hot path) don't allocate per chunk.
var transformScratch par.Arena

// Model is a fitted iFair representation: K prototype vectors and the
// attribute-weight vector α of the distance function (Def. 7). A model is
// application-agnostic — it can transform any record with the same schema,
// for use by arbitrary downstream classifiers and rankers.
type Model struct {
	// Prototypes is the K×N matrix whose rows are the prototype vectors
	// v_k.
	Prototypes *mat.Dense
	// Alpha is the non-negative attribute weight vector of the distance
	// kernel.
	Alpha []float64
	// P, TakeRoot and Kernel record the distance and membership
	// configuration the model was trained with.
	P        float64
	TakeRoot bool
	Kernel   Kernel

	// Loss is the final training objective value (for best-of-restarts
	// selection and reporting).
	Loss float64
}

// K returns the number of prototypes.
func (m *Model) K() int { return m.Prototypes.Rows() }

// Dims returns the attribute dimensionality N.
func (m *Model) Dims() int { return m.Prototypes.Cols() }

// kernelDistance computes the (optionally rooted) weighted Minkowski
// distance of Def. 7 between a record and a prototype row.
func kernelDistance(x, v, alpha []float64, p float64, takeRoot bool) float64 {
	var s float64
	if p == 2 {
		for n := range x {
			d := x[n] - v[n]
			s += alpha[n] * d * d
		}
	} else {
		for n := range x {
			s += alpha[n] * math.Pow(math.Abs(x[n]-v[n]), p)
		}
	}
	if takeRoot {
		return math.Pow(s, 1/p)
	}
	return s
}

// Validate checks the internal consistency of a model — dimensions agree,
// weights are non-negative and finite, the Minkowski exponent and kernel
// are supported. Hand-built or deserialised models should be validated
// before serving traffic; Fit always returns a valid model.
func (m *Model) Validate() error {
	if m.Prototypes == nil {
		return fmt.Errorf("ifair: model has no prototypes")
	}
	k, n := m.Prototypes.Dims()
	if k <= 0 || n <= 0 {
		return fmt.Errorf("ifair: invalid model dimensions K=%d N=%d", k, n)
	}
	if len(m.Alpha) != n {
		return fmt.Errorf("ifair: alpha length %d does not match N=%d", len(m.Alpha), n)
	}
	for i, a := range m.Alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("ifair: non-finite attribute weight alpha[%d]=%v", i, a)
		}
		if a < 0 {
			return fmt.Errorf("ifair: negative attribute weight alpha[%d]=%v", i, a)
		}
	}
	for i, v := range m.Prototypes.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ifair: non-finite prototype entry %d: %v", i, v)
		}
	}
	if math.IsNaN(m.P) || m.P < 1 {
		return fmt.Errorf("ifair: minkowski exponent p=%v, want p ≥ 1", m.P)
	}
	if m.Kernel < ExpKernel || m.Kernel > InverseKernel {
		return fmt.Errorf("ifair: unknown kernel id %d", int(m.Kernel))
	}
	return nil
}

// checkRecord verifies that a record matches the model's dimensionality.
func (m *Model) checkRecord(x []float64) error {
	if len(x) != m.Dims() {
		return fmt.Errorf("ifair: record has %d attributes, model expects %d", len(x), m.Dims())
	}
	return nil
}

// probabilitiesInto computes the membership distribution of x into u,
// which must have length K. The caller guarantees len(x) == Dims().
func (m *Model) probabilitiesInto(x, u []float64) {
	k := m.K()
	switch m.Kernel {
	case InverseKernel:
		var sum float64
		for j := 0; j < k; j++ {
			d := kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = 1 / (1 + d)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	default: // ExpKernel
		maxZ := math.Inf(-1)
		for j := 0; j < k; j++ {
			z := -kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = z
			if z > maxZ {
				maxZ = z
			}
		}
		var sum float64
		for j := range u {
			u[j] = math.Exp(u[j] - maxZ)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	}
}

// transformRowInto writes x̃ = Σ_k u_k·v_k into out (length N), using u
// (length K) as scratch for the membership weights.
func (m *Model) transformRowInto(x, u, out []float64) {
	m.probabilitiesInto(x, u)
	for j := range out {
		out[j] = 0
	}
	for k, uk := range u {
		mat.AddScaled(out, uk, m.Prototypes.Row(k))
	}
}

// ProbabilitiesChecked is Probabilities with an error instead of a panic
// on dimension mismatch — the variant servers should call so malformed
// client records surface as 4xx responses, not crashes.
func (m *Model) ProbabilitiesChecked(x []float64) ([]float64, error) {
	if err := m.checkRecord(x); err != nil {
		return nil, err
	}
	u := make([]float64, m.K())
	m.probabilitiesInto(x, u)
	return u, nil
}

// Probabilities returns the cluster-membership distribution u_i for a
// single record. Under the default ExpKernel this is Def. 8:
// u_ik = softmax_k(−d(x_i, v_k)); under InverseKernel the weights are
// 1/(1 + d), normalised. It panics on dimension mismatch; use
// ProbabilitiesChecked to get an error instead.
func (m *Model) Probabilities(x []float64) []float64 {
	u, err := m.ProbabilitiesChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return u
}

// TransformRowChecked is TransformRow with an error instead of a panic on
// dimension mismatch.
func (m *Model) TransformRowChecked(x []float64) ([]float64, error) {
	if err := m.checkRecord(x); err != nil {
		return nil, err
	}
	u := make([]float64, m.K())
	out := make([]float64, m.Dims())
	m.transformRowInto(x, u, out)
	return out, nil
}

// TransformRow maps one record to its fair representation
// x̃ = Σ_k u_k·v_k (Def. 3). It panics on dimension mismatch; use
// TransformRowChecked to get an error instead.
func (m *Model) TransformRow(x []float64) []float64 {
	out, err := m.TransformRowChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TransformChecked is Transform with an error instead of a panic on
// dimension mismatch.
func (m *Model) TransformChecked(x *mat.Dense) (*mat.Dense, error) {
	return m.TransformParallelChecked(x, 1)
}

// Transform maps every row of x to its fair representation, returning the
// M×N matrix X̃ = U·Vᵀ of Def. 2. It panics on dimension mismatch; use
// TransformChecked to get an error instead.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	out, err := m.TransformChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TransformParallelChecked transforms every row of x using up to workers
// goroutines over a par.Chunks row plan. Row chunking only changes which
// goroutine computes a row, never its value, so the result is
// bit-identical to Transform for any worker count. workers ≤ 1 runs
// inline.
func (m *Model) TransformParallelChecked(x *mat.Dense, workers int) (*mat.Dense, error) {
	rows, cols := x.Dims()
	if cols != m.Dims() {
		return nil, fmt.Errorf("ifair: data has %d attributes, model expects %d", cols, m.Dims())
	}
	out := mat.NewDense(rows, cols)
	par.Chunks(rows).Run(workers, func(_, lo, hi int) {
		u := transformScratch.Get(m.K()) // per-chunk membership scratch
		for i := lo; i < hi; i++ {
			m.transformRowInto(x.Row(i), u, out.Row(i))
		}
		transformScratch.Put(u)
	})
	return out, nil
}

// TransformParallel is TransformParallelChecked with the panicking
// contract of Transform.
func (m *Model) TransformParallel(x *mat.Dense, workers int) *mat.Dense {
	out, err := m.TransformParallelChecked(x, workers)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// Memberships returns the full M×K probability matrix U for the rows of x.
func (m *Model) Memberships(x *mat.Dense) *mat.Dense {
	rows, cols := x.Dims()
	if cols != m.Dims() {
		panic(fmt.Sprintf("ifair: data has %d attributes, model expects %d", cols, m.Dims()))
	}
	out := mat.NewDense(rows, m.K())
	for i := 0; i < rows; i++ {
		m.probabilitiesInto(x.Row(i), out.Row(i))
	}
	return out
}
