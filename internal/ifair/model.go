package ifair

import (
	"fmt"
	"math"

	"repro/internal/mat"
)

// Model is a fitted iFair representation: K prototype vectors and the
// attribute-weight vector α of the distance function (Def. 7). A model is
// application-agnostic — it can transform any record with the same schema,
// for use by arbitrary downstream classifiers and rankers.
type Model struct {
	// Prototypes is the K×N matrix whose rows are the prototype vectors
	// v_k.
	Prototypes *mat.Dense
	// Alpha is the non-negative attribute weight vector of the distance
	// kernel.
	Alpha []float64
	// P, TakeRoot and Kernel record the distance and membership
	// configuration the model was trained with.
	P        float64
	TakeRoot bool
	Kernel   Kernel

	// Loss is the final training objective value (for best-of-restarts
	// selection and reporting).
	Loss float64
}

// K returns the number of prototypes.
func (m *Model) K() int { return m.Prototypes.Rows() }

// Dims returns the attribute dimensionality N.
func (m *Model) Dims() int { return m.Prototypes.Cols() }

// kernelDistance computes the (optionally rooted) weighted Minkowski
// distance of Def. 7 between a record and a prototype row.
func kernelDistance(x, v, alpha []float64, p float64, takeRoot bool) float64 {
	var s float64
	if p == 2 {
		for n := range x {
			d := x[n] - v[n]
			s += alpha[n] * d * d
		}
	} else {
		for n := range x {
			s += alpha[n] * math.Pow(math.Abs(x[n]-v[n]), p)
		}
	}
	if takeRoot {
		return math.Pow(s, 1/p)
	}
	return s
}

// Probabilities returns the cluster-membership distribution u_i for a
// single record. Under the default ExpKernel this is Def. 8:
// u_ik = softmax_k(−d(x_i, v_k)); under InverseKernel the weights are
// 1/(1 + d), normalised.
func (m *Model) Probabilities(x []float64) []float64 {
	if len(x) != m.Dims() {
		panic(fmt.Sprintf("ifair: record has %d attributes, model expects %d", len(x), m.Dims()))
	}
	k := m.K()
	u := make([]float64, k)
	switch m.Kernel {
	case InverseKernel:
		var sum float64
		for j := 0; j < k; j++ {
			d := kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = 1 / (1 + d)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	default: // ExpKernel
		maxZ := math.Inf(-1)
		for j := 0; j < k; j++ {
			z := -kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = z
			if z > maxZ {
				maxZ = z
			}
		}
		var sum float64
		for j := range u {
			u[j] = math.Exp(u[j] - maxZ)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	}
	return u
}

// TransformRow maps one record to its fair representation
// x̃ = Σ_k u_k·v_k (Def. 3).
func (m *Model) TransformRow(x []float64) []float64 {
	u := m.Probabilities(x)
	out := make([]float64, m.Dims())
	for k, uk := range u {
		mat.AddScaled(out, uk, m.Prototypes.Row(k))
	}
	return out
}

// Transform maps every row of x to its fair representation, returning the
// M×N matrix X̃ = U·Vᵀ of Def. 2.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	rows, cols := x.Dims()
	if cols != m.Dims() {
		panic(fmt.Sprintf("ifair: data has %d attributes, model expects %d", cols, m.Dims()))
	}
	out := mat.NewDense(rows, cols)
	for i := 0; i < rows; i++ {
		copy(out.Row(i), m.TransformRow(x.Row(i)))
	}
	return out
}

// Memberships returns the full M×K probability matrix U for the rows of x.
func (m *Model) Memberships(x *mat.Dense) *mat.Dense {
	rows, _ := x.Dims()
	out := mat.NewDense(rows, m.K())
	for i := 0; i < rows; i++ {
		copy(out.Row(i), m.Probabilities(x.Row(i)))
	}
	return out
}
