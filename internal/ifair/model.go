package ifair

import (
	"fmt"
	"math"

	"repro/internal/kernel"
	"repro/internal/mat"
)

// Model is a fitted iFair representation: K prototype vectors and the
// attribute-weight vector α of the distance function (Def. 7). A model is
// application-agnostic — it can transform any record with the same schema,
// for use by arbitrary downstream classifiers and rankers.
type Model struct {
	// Prototypes is the K×N matrix whose rows are the prototype vectors
	// v_k.
	Prototypes *mat.Dense
	// Alpha is the non-negative attribute weight vector of the distance
	// kernel.
	Alpha []float64
	// P, TakeRoot and Kernel record the distance and membership
	// configuration the model was trained with.
	P        float64
	TakeRoot bool
	Kernel   Kernel

	// Loss is the final training objective value (for best-of-restarts
	// selection and reporting).
	Loss float64
}

// K returns the number of prototypes.
func (m *Model) K() int { return m.Prototypes.Rows() }

// Dims returns the attribute dimensionality N.
func (m *Model) Dims() int { return m.Prototypes.Cols() }

// kernelDistance computes the (optionally rooted) weighted Minkowski
// distance of Def. 7 between a record and a prototype row.
func kernelDistance(x, v, alpha []float64, p float64, takeRoot bool) float64 {
	var s float64
	if p == 2 {
		for n := range x {
			d := x[n] - v[n]
			s += alpha[n] * d * d
		}
	} else {
		for n := range x {
			s += alpha[n] * math.Pow(math.Abs(x[n]-v[n]), p)
		}
	}
	if takeRoot {
		return math.Pow(s, 1/p)
	}
	return s
}

// Validate checks the internal consistency of a model — dimensions agree,
// weights are non-negative and finite, the Minkowski exponent and kernel
// are supported. Hand-built or deserialised models should be validated
// before serving traffic; Fit always returns a valid model.
func (m *Model) Validate() error {
	if m.Prototypes == nil {
		return fmt.Errorf("ifair: model has no prototypes")
	}
	k, n := m.Prototypes.Dims()
	if k <= 0 || n <= 0 {
		return fmt.Errorf("ifair: invalid model dimensions K=%d N=%d", k, n)
	}
	if len(m.Alpha) != n {
		return fmt.Errorf("ifair: alpha length %d does not match N=%d", len(m.Alpha), n)
	}
	for i, a := range m.Alpha {
		if math.IsNaN(a) || math.IsInf(a, 0) {
			return fmt.Errorf("ifair: non-finite attribute weight alpha[%d]=%v", i, a)
		}
		if a < 0 {
			return fmt.Errorf("ifair: negative attribute weight alpha[%d]=%v", i, a)
		}
	}
	for i, v := range m.Prototypes.Data() {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("ifair: non-finite prototype entry %d: %v", i, v)
		}
	}
	if math.IsNaN(m.P) || m.P < 1 {
		return fmt.Errorf("ifair: minkowski exponent p=%v, want p ≥ 1", m.P)
	}
	if m.Kernel < ExpKernel || m.Kernel > InverseKernel {
		return fmt.Errorf("ifair: unknown kernel id %d", int(m.Kernel))
	}
	return nil
}

// Compile compiles the model into an immutable serving kernel (see
// internal/kernel): parameters laid out contiguously, prototype norms
// precomputed, scratch pooled, so the per-row transform allocates
// nothing. The Float64 dtype is bit-identical to the model's own
// Transform; Float32 halves parameter bandwidth within the tolerance
// documented in the kernel package. Compile validates the model first.
// Serving paths should compile once per model version and reuse the
// kernel, as the registry in internal/server does.
func (m *Model) Compile(dtype kernel.DType) (*kernel.CompiledKernel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	membership := kernel.Exp
	if m.Kernel == InverseKernel {
		membership = kernel.Inverse
	}
	return kernel.Compile(kernel.Spec{
		Prototypes: m.Prototypes,
		Alpha:      m.Alpha,
		P:          m.P,
		TakeRoot:   m.TakeRoot,
		Membership: membership,
	}, dtype)
}

// checkRecord verifies that a record matches the model's dimensionality.
func (m *Model) checkRecord(x []float64) error {
	if len(x) != m.Dims() {
		return fmt.Errorf("ifair: record has %d attributes, model expects %d", len(x), m.Dims())
	}
	return nil
}

// probabilitiesInto computes the membership distribution of x into u,
// which must have length K. The caller guarantees len(x) == Dims().
func (m *Model) probabilitiesInto(x, u []float64) {
	k := m.K()
	switch m.Kernel {
	case InverseKernel:
		var sum float64
		for j := 0; j < k; j++ {
			d := kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = 1 / (1 + d)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	default: // ExpKernel
		maxZ := math.Inf(-1)
		for j := 0; j < k; j++ {
			z := -kernelDistance(x, m.Prototypes.Row(j), m.Alpha, m.P, m.TakeRoot)
			u[j] = z
			if z > maxZ {
				maxZ = z
			}
		}
		var sum float64
		for j := range u {
			u[j] = math.Exp(u[j] - maxZ)
			sum += u[j]
		}
		for j := range u {
			u[j] /= sum
		}
	}
}

// transformRowInto writes x̃ = Σ_k u_k·v_k into out (length N), using u
// (length K) as scratch for the membership weights.
func (m *Model) transformRowInto(x, u, out []float64) {
	m.probabilitiesInto(x, u)
	for j := range out {
		out[j] = 0
	}
	for k, uk := range u {
		mat.AddScaled(out, uk, m.Prototypes.Row(k))
	}
}

// ProbabilitiesChecked is Probabilities with an error instead of a panic
// on dimension mismatch — the variant servers should call so malformed
// client records surface as 4xx responses, not crashes.
func (m *Model) ProbabilitiesChecked(x []float64) ([]float64, error) {
	if err := m.checkRecord(x); err != nil {
		return nil, err
	}
	u := make([]float64, m.K())
	m.probabilitiesInto(x, u)
	return u, nil
}

// Probabilities returns the cluster-membership distribution u_i for a
// single record. Under the default ExpKernel this is Def. 8:
// u_ik = softmax_k(−d(x_i, v_k)); under InverseKernel the weights are
// 1/(1 + d), normalised.
//
// Deprecated: thin panicking wrapper kept for source compatibility. Use
// ProbabilitiesChecked for an error on malformed input, or compile the
// model (Compile) and call CompiledKernel.ProbabilitiesInto for the
// allocation-free serving path.
func (m *Model) Probabilities(x []float64) []float64 {
	u, err := m.ProbabilitiesChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return u
}

// TransformRowChecked is TransformRow with an error instead of a panic on
// dimension mismatch.
func (m *Model) TransformRowChecked(x []float64) ([]float64, error) {
	if err := m.checkRecord(x); err != nil {
		return nil, err
	}
	u := make([]float64, m.K())
	out := make([]float64, m.Dims())
	m.transformRowInto(x, u, out)
	return out, nil
}

// TransformRow maps one record to its fair representation
// x̃ = Σ_k u_k·v_k (Def. 3).
//
// Deprecated: thin panicking wrapper kept for source compatibility. Use
// TransformRowChecked for an error on malformed input, or compile the
// model (Compile) and call CompiledKernel.TransformRowInto for the
// allocation-free serving path.
func (m *Model) TransformRow(x []float64) []float64 {
	out, err := m.TransformRowChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TransformChecked is Transform with an error instead of a panic on
// dimension mismatch.
func (m *Model) TransformChecked(x *mat.Dense) (*mat.Dense, error) {
	return m.TransformParallelChecked(x, 1)
}

// Transform maps every row of x to its fair representation, returning the
// M×N matrix X̃ = U·Vᵀ of Def. 2.
//
// Deprecated: thin panicking wrapper kept for source compatibility. Use
// TransformChecked for an error on malformed input, or TransformInto /
// a compiled kernel to supply the destination and avoid the per-call
// allocation.
func (m *Model) Transform(x *mat.Dense) *mat.Dense {
	out, err := m.TransformChecked(x)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// TransformInto transforms every row of x into the matching row of dst
// (which must be x.Rows()×Dims, must not share backing storage with x,
// and is fully overwritten, never retained) using up to workers
// goroutines. It compiles a float64 kernel per call — validating the
// model in the process — so the result is bit-identical to Transform
// for any worker count; serving paths that transform repeatedly should
// Compile once and call the kernel directly.
func (m *Model) TransformInto(dst, x *mat.Dense, workers int) error {
	if cols := x.Cols(); cols != m.Dims() {
		return fmt.Errorf("ifair: data has %d attributes, model expects %d", cols, m.Dims())
	}
	kern, err := m.Compile(kernel.Float64)
	if err != nil {
		return err
	}
	return kern.TransformInto(dst, x, workers)
}

// TransformParallelChecked transforms every row of x using up to workers
// goroutines through a compiled float64 kernel. Row chunking only
// changes which goroutine computes a row, never its value, so the
// result is bit-identical to Transform for any worker count. workers ≤ 1
// runs inline.
func (m *Model) TransformParallelChecked(x *mat.Dense, workers int) (*mat.Dense, error) {
	rows, cols := x.Dims()
	if cols != m.Dims() {
		return nil, fmt.Errorf("ifair: data has %d attributes, model expects %d", cols, m.Dims())
	}
	out := mat.NewDense(rows, cols)
	if err := m.TransformInto(out, x, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// TransformParallel is TransformParallelChecked with the panicking
// contract of Transform.
func (m *Model) TransformParallel(x *mat.Dense, workers int) *mat.Dense {
	out, err := m.TransformParallelChecked(x, workers)
	if err != nil {
		panic(err.Error())
	}
	return out
}

// MembershipsInto writes the membership distribution of every row of x
// into the matching row of dst, which must be x.Rows()×K, must not
// share backing storage with x, and is fully overwritten (never
// retained). No allocation is performed.
func (m *Model) MembershipsInto(dst, x *mat.Dense) error {
	rows, cols := x.Dims()
	if cols != m.Dims() {
		return fmt.Errorf("ifair: data has %d attributes, model expects %d", cols, m.Dims())
	}
	if dr, dc := dst.Dims(); dr != rows || dc != m.K() {
		return fmt.Errorf("ifair: membership destination is %d×%d, want %d×%d", dr, dc, rows, m.K())
	}
	for i := 0; i < rows; i++ {
		m.probabilitiesInto(x.Row(i), dst.Row(i))
	}
	return nil
}

// Memberships returns the full M×K probability matrix U for the rows of
// x, panicking on dimension mismatch; MembershipsInto is the checked,
// non-allocating variant.
func (m *Model) Memberships(x *mat.Dense) *mat.Dense {
	out := mat.NewDense(x.Rows(), m.K())
	if err := m.MembershipsInto(out, x); err != nil {
		panic(err.Error())
	}
	return out
}
