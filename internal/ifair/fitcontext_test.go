package ifair

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/optimize"
)

func ctxOpts() Options {
	return Options{
		K:         4,
		Lambda:    1,
		Mu:        1,
		Protected: []int{3},
		Init:      InitMaskedProtected,
		Restarts:  8,
		Seed:      7,
	}
}

// TestFitContextParallelMatchesSerial is the acceptance criterion of the
// engine redesign: with Restarts=8, the winning model must be
// bit-identical between serial execution and a 4-worker pool.
func TestFitContextParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomData(rng, 40, 6)

	serialOpts := ctxOpts()
	serialOpts.RestartWorkers = 1
	serial, err := FitContext(context.Background(), x, serialOpts)
	if err != nil {
		t.Fatalf("serial fit: %v", err)
	}

	parallelOpts := ctxOpts()
	parallelOpts.RestartWorkers = 4
	parallel, err := FitContext(context.Background(), x, parallelOpts)
	if err != nil {
		t.Fatalf("parallel fit: %v", err)
	}

	if serial.Loss != parallel.Loss {
		t.Fatalf("winning loss differs: serial %v, parallel %v", serial.Loss, parallel.Loss)
	}
	for j, a := range serial.Alpha {
		if parallel.Alpha[j] != a {
			t.Fatalf("alpha[%d] differs: serial %v, parallel %v", j, a, parallel.Alpha[j])
		}
	}
	sp, pp := serial.Prototypes.Data(), parallel.Prototypes.Data()
	for i := range sp {
		if sp[i] != pp[i] {
			t.Fatalf("prototype datum %d differs: serial %v, parallel %v", i, sp[i], pp[i])
		}
	}
}

// TestFitMatchesFitContextBackground pins the convenience wrapper to the
// context-aware path.
func TestFitMatchesFitContextBackground(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomData(rng, 25, 5)
	opts := ctxOpts()
	opts.Restarts = 2

	a, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss != b.Loss {
		t.Fatalf("Fit loss %v != FitContext loss %v", a.Loss, b.Loss)
	}
}

func TestFitContextAlreadyCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomData(rng, 20, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FitContext(ctx, x, ctxOpts())
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// cancellingTrace cancels the context after the first few iteration
// events, so the fit is aborted mid-optimisation.
type cancellingTrace struct {
	mu     sync.Mutex
	cancel context.CancelFunc
	after  int
	events int
	iters  int
}

func (c *cancellingTrace) RestartStart(int) {}

func (c *cancellingTrace) Iteration(int, optimize.Iteration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.events++
	c.iters++
	if c.events == c.after {
		c.cancel()
	}
}

func (c *cancellingTrace) RestartEnd(int, optimize.Result, error) {}

func TestFitContextPromptCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomData(rng, 60, 6)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	tr := &cancellingTrace{cancel: cancel, after: 3}

	opts := ctxOpts()
	opts.Restarts = 8
	opts.RestartWorkers = 2
	opts.MaxIterations = 500
	opts.Trace = tr

	start := time.Now()
	_, err := FitContext(ctx, x, opts)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}

	// The whole fit must stop within about one iteration per in-flight
	// restart: at most the 3 pre-cancel events plus one trailing event per
	// worker, nowhere near 8 restarts × 500 iterations.
	tr.mu.Lock()
	iters := tr.iters
	tr.mu.Unlock()
	if iters > 3+opts.RestartWorkers {
		t.Fatalf("observed %d iteration events after cancelling at 3; cancellation did not propagate within one iteration", iters)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancelled fit took %v", elapsed)
	}
}

// orderedTrace records events to check the per-restart protocol.
type orderedTrace struct {
	mu      sync.Mutex
	started map[int]bool
	iters   map[int]int
	ended   map[int]optimize.Result
}

func newOrderedTrace() *orderedTrace {
	return &orderedTrace{started: map[int]bool{}, iters: map[int]int{}, ended: map[int]optimize.Result{}}
}

func (o *orderedTrace) RestartStart(r int) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started[r] = true
}

func (o *orderedTrace) Iteration(r int, it optimize.Iteration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	if !o.started[r] {
		o.iters[-1]++ // iteration before start: flagged below
		return
	}
	o.iters[r]++
}

func (o *orderedTrace) RestartEnd(r int, res optimize.Result, err error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ended[r] = res
}

func TestFitContextTraceProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomData(rng, 30, 5)

	tr := newOrderedTrace()
	opts := ctxOpts()
	opts.Restarts = 3
	opts.RestartWorkers = 3
	opts.Trace = tr

	model, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}

	tr.mu.Lock()
	defer tr.mu.Unlock()
	if tr.iters[-1] > 0 {
		t.Fatal("iteration events observed before their RestartStart")
	}
	bestSeen := false
	for r := 0; r < opts.Restarts; r++ {
		if !tr.started[r] {
			t.Fatalf("restart %d never reported RestartStart", r)
		}
		res, ok := tr.ended[r]
		if !ok {
			t.Fatalf("restart %d never reported RestartEnd", r)
		}
		if tr.iters[r] == 0 {
			t.Fatalf("restart %d reported no iteration events", r)
		}
		if res.F == model.Loss {
			bestSeen = true
		}
	}
	if !bestSeen {
		t.Fatal("no RestartEnd result matches the winning model's loss")
	}
}

func TestFitContextBestOfPartialFailures(t *testing.T) {
	// With NaN poisoning one restart's initial point the optimizer for
	// that restart fails; the fit must still return the best surviving
	// model rather than aborting on the first error. We simulate this via
	// ForceNumericalGradient being irrelevant — instead exercise the error
	// path directly through optimize.Restarts semantics, which
	// TestRestartsErrorPolicy covers at the engine level; here we only pin
	// that a normal multi-restart fit succeeds end to end with workers.
	rng := rand.New(rand.NewSource(6))
	x := randomData(rng, 20, 4)
	opts := ctxOpts()
	opts.Restarts = 4
	opts.RestartWorkers = 4
	model, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model == nil || model.Loss <= 0 {
		t.Fatalf("unexpected model: %+v", model)
	}
}
