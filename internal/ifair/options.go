// Package ifair implements the paper's core contribution: learning
// individually fair data representations by probabilistic prototype
// clustering (Sec. III).
//
// A model consists of K prototype vectors v_k and an attribute-weight
// vector α. Each record x_i is softly assigned to prototypes through a
// softmax over negative weighted distances (Def. 8) and represented as the
// convex combination x̃_i = Σ_k u_ik·v_k (Def. 2–3). Parameters are learned
// by minimising λ·L_util + µ·L_fair (Def. 9) with L-BFGS, where L_util is
// the reconstruction loss (Def. 4) and L_fair preserves pairwise distances
// computed on non-protected attributes (Def. 5).
package ifair

import (
	"errors"
	"fmt"

	"repro/internal/checkpoint"
	"repro/internal/knn"
)

// InitStrategy selects how the attribute-weight vector α is initialised,
// distinguishing the paper's two variants (Sec. V-B).
type InitStrategy int

const (
	// InitRandom draws every α_n uniformly from (0, 1) — the paper's
	// iFair-a.
	InitRandom InitStrategy = iota
	// InitMaskedProtected draws non-protected α_n uniformly from (0, 1)
	// and sets protected entries to a near-zero value — the paper's
	// iFair-b ("initializing protected attributes to (near-)zero values
	// ... avoiding zero values to allow slack").
	InitMaskedProtected
)

// String implements fmt.Stringer.
func (s InitStrategy) String() string {
	switch s {
	case InitRandom:
		return "iFair-a"
	case InitMaskedProtected:
		return "iFair-b"
	default:
		return "unknown"
	}
}

// FairnessMode selects how the individual-fairness loss pairs records.
type FairnessMode int

const (
	// PairwiseFairness evaluates Def. 5 exactly over all record pairs
	// (O(M²) per objective evaluation).
	PairwiseFairness FairnessMode = iota
	// SampledFairness pairs each record with PairSamples random partners,
	// an O(M·S) approximation in the spirit of the paper's remark that the
	// quadratic number of comparisons can be avoided.
	SampledFairness
	// NeighborFairness pairs each record with PairSamples partners drawn
	// (seeded, without replacement) from its NeighborK nearest neighbours
	// in the non-protected subspace, found with an exact k-d tree. Def. 5
	// weights exactly the comparisons individual fairness cares about most
	// — records that are close on the lawful attributes — while keeping
	// the O(M·S) pair budget of SampledFairness, so it is the
	// recommended mode for large datasets.
	NeighborFairness
)

// String implements fmt.Stringer.
func (m FairnessMode) String() string {
	switch m {
	case PairwiseFairness:
		return "pairwise"
	case SampledFairness:
		return "sampled"
	case NeighborFairness:
		return "neighbor"
	default:
		return "unknown"
	}
}

// MaxPairwiseRows is the largest record count PairwiseFairness accepts
// when the fairness loss is active: above it the O(M²) pair list (and the
// matching per-evaluation cost) stops being a configuration and starts
// being an outage. Options.fill rejects larger datasets and points at
// SampledFairness / NeighborFairness, whose pair budgets are O(M·S).
const MaxPairwiseRows = 20000

// DefaultNeighborK is the neighbour-pool size per record under
// NeighborFairness when Options.NeighborK is unset.
const DefaultNeighborK = 32

// Kernel selects how kernel distances become membership weights. The
// paper notes that "our framework is flexible and easily supports other
// kernels and distance functions" and leaves exploring them to future
// work; both options below are implemented with analytic gradients.
type Kernel int

const (
	// ExpKernel is the paper's choice (Def. 8): u_ik ∝ exp(−d(x_i, v_k)).
	// With the squared p = 2 distance this is the Gaussian kernel.
	ExpKernel Kernel = iota
	// InverseKernel uses the heavy-tailed Student-t style weighting
	// u_ik ∝ 1/(1 + d(x_i, v_k)), which decays polynomially and therefore
	// keeps distant prototypes relevant (useful when clusters overlap).
	InverseKernel
)

// String implements fmt.Stringer.
func (k Kernel) String() string {
	switch k {
	case ExpKernel:
		return "exp"
	case InverseKernel:
		return "inverse"
	default:
		return "unknown"
	}
}

// PrototypeInit selects how prototype vectors are initialised.
type PrototypeInit int

const (
	// InitDataPoints seeds each prototype with a randomly chosen training
	// record plus small Gaussian noise. This converges faster on
	// standardised data and is the default.
	InitDataPoints PrototypeInit = iota
	// InitUniform draws every prototype coordinate uniformly from (0, 1),
	// exactly as stated in Sec. V-B of the paper.
	InitUniform
)

// Options configures Fit. The zero value is not valid: K must be set.
type Options struct {
	// K is the number of prototypes (the latent dimensionality). The paper
	// grid-searches K ∈ {10, 20, 30}.
	K int
	// Lambda weights the reconstruction (utility) loss L_util.
	Lambda float64
	// Mu weights the individual-fairness loss L_fair.
	Mu float64
	// Protected lists the column indices of protected attributes. It may
	// be empty (the paper explicitly allows l = N).
	Protected []int

	// Init selects iFair-a or iFair-b initialisation of α.
	Init InitStrategy
	// ProtoInit selects prototype initialisation.
	ProtoInit PrototypeInit
	// NearZero is the α value assigned to protected attributes under
	// InitMaskedProtected. Default 0.01.
	NearZero float64

	// Fairness selects the pairing strategy for L_fair.
	Fairness FairnessMode
	// PairSamples is the number of partners per record under
	// SampledFairness and NeighborFairness. Default 16.
	PairSamples int
	// NeighborK is the neighbour-pool size per record under
	// NeighborFairness: partners are sampled from the NeighborK nearest
	// neighbours in the non-protected subspace. Records with fewer than
	// PairSamples distinct neighbours in the pool pair with all of them.
	// Default DefaultNeighborK.
	NeighborK int

	// P is the Minkowski exponent of Def. 7 (p ≥ 1). Default 2. All
	// exponents train with analytic gradients; note p values near 1 have
	// subgradient kinks at exactly-equal coordinates.
	P float64
	// TakeRoot applies the 1/p root of Def. 7 literally instead of using
	// the rootless form (the Gaussian-kernel convention used by the
	// reference implementation).
	TakeRoot bool
	// Kernel selects the membership weighting (Def. 8 by default).
	Kernel Kernel
	// ForceNumericalGradient trains with central finite differences
	// instead of the analytic gradient — retained for validation and the
	// gradient ablation bench; far slower.
	ForceNumericalGradient bool

	// Workers is the number of goroutines evaluating the objective.
	// Values ≤ 1 run sequentially. Evaluation chunks records and pairs
	// with internal/par, whose chunk plan depends only on the problem
	// size and whose partial reductions run in chunk order — so losses,
	// gradients and the fitted model are bit-identical for every worker
	// count, including sequential runs.
	Workers int

	// Restarts is the number of random restarts; the best final loss wins.
	// The paper reports the best of 3 runs. Default 1.
	Restarts int
	// RestartWorkers bounds how many restarts train concurrently under
	// FitContext. Values ≤ 1 run restarts serially. Each restart draws its
	// initialisation from a seed derived only from (Seed, restart index),
	// so the winning model is bit-identical for every worker count.
	RestartWorkers int
	// Trace, when non-nil, observes training: restart start/end events and
	// one event per optimizer iteration. With RestartWorkers > 1 it is
	// called from multiple goroutines and must be safe for concurrent use.
	Trace Trace
	// Checkpoint, when non-nil, makes FitContext crash-safe: finished
	// restarts are persisted to the manager's directory the moment they
	// complete (with periodic in-flight snapshots in between), and a
	// later FitContext with the same data, options and seed skips them,
	// producing a model bit-identical to an uninterrupted run. A
	// checkpoint recorded for different data, options or seed is
	// detected by fingerprint and ignored (or rejected, if the manager
	// is strict). Snapshot write failures degrade durability only —
	// training itself never fails because a disk did.
	Checkpoint *checkpoint.Manager
	// MaxIterations bounds L-BFGS iterations per restart. Default 150.
	MaxIterations int
	// BatchSize, when positive, trains with mini-batch SGD instead of the
	// full-batch optimizers: every epoch reshuffles the records (seeded,
	// without replacement) and steps once per batch on the batch's
	// sub-objective. Scratch is sized to the batch, not the dataset, so
	// memory stays flat as M grows. Requires the analytic gradient.
	// 0 (the default) keeps full-batch L-BFGS / gradient descent.
	BatchSize int
	// Epochs bounds SGD epochs per restart (each epoch visits every
	// record once). Only used when BatchSize > 0. Default 30.
	Epochs int
	// LearnRate is the per-item SGD step size: each batch steps by
	// (LearnRate/batch)·∇. Only used when BatchSize > 0. Default 0.01.
	LearnRate float64
	// UseGradientDescent switches the optimiser from L-BFGS to plain
	// gradient descent (ablation support).
	UseGradientDescent bool
	// WarmStart, when non-nil, seeds restart 0 from a previously fitted
	// model instead of a random draw: α and the prototypes are copied
	// into the initial parameter vector, so a refit on drifted data
	// continues from the served representation rather than from scratch.
	// The remaining Restarts−1 restarts stay random, so a warm start can
	// only improve the best-of-N outcome. The model must match K and the
	// data's column count. Its P/TakeRoot/Kernel are NOT copied — the
	// refit trains under this Options' geometry.
	WarmStart *Model
	// Seed makes training deterministic.
	Seed int64

	// prebuiltNeighbors, when non-nil, is a kd-tree over the
	// non-protected subspace of the training matrix, built incrementally
	// during a shard sweep (FitStream). buildNeighborPairs uses it
	// instead of re-projecting and re-indexing the full matrix. It is
	// not part of the problem identity: the tree indexes the same values
	// nonProtectedMatrix would produce, so pairs — and the fitted model
	// — are bit-identical with or without it.
	prebuiltNeighbors *knn.KDTree
}

func (o *Options) fill(rows, cols int) error {
	if o.K <= 0 {
		return errors.New("ifair: Options.K must be positive")
	}
	if o.Lambda < 0 || o.Mu < 0 {
		return errors.New("ifair: Lambda and Mu must be non-negative")
	}
	for _, p := range o.Protected {
		if p < 0 || p >= cols {
			return fmt.Errorf("ifair: protected index %d out of range for %d columns", p, cols)
		}
	}
	if o.Fairness == PairwiseFairness && o.Mu > 0 && rows > MaxPairwiseRows {
		return fmt.Errorf(
			"ifair: PairwiseFairness enumerates all %d·(%d−1)/2 record pairs, beyond the %d-row support limit; use SampledFairness or NeighborFairness, whose pair budgets are rows·PairSamples",
			rows, rows, MaxPairwiseRows)
	}
	if o.NearZero <= 0 {
		o.NearZero = 0.01
	}
	if o.PairSamples <= 0 {
		o.PairSamples = 16
	}
	if o.NeighborK <= 0 {
		o.NeighborK = DefaultNeighborK
	}
	if o.P == 0 {
		o.P = 2
	}
	if o.P < 1 {
		return fmt.Errorf("ifair: Minkowski exponent p = %v is not a metric (need p ≥ 1)", o.P)
	}
	if o.Restarts <= 0 {
		o.Restarts = 1
	}
	if o.MaxIterations <= 0 {
		o.MaxIterations = 150
	}
	if o.BatchSize < 0 {
		return errors.New("ifair: BatchSize must be non-negative")
	}
	if ws := o.WarmStart; ws != nil {
		if err := ws.Validate(); err != nil {
			return fmt.Errorf("ifair: WarmStart model: %w", err)
		}
		if ws.K() != o.K {
			return fmt.Errorf("ifair: WarmStart model has K=%d prototypes, Options.K is %d", ws.K(), o.K)
		}
		if ws.Dims() != cols {
			return fmt.Errorf("ifair: WarmStart model expects %d attributes, training data has %d", ws.Dims(), cols)
		}
	}
	if o.BatchSize > 0 {
		if o.ForceNumericalGradient {
			return errors.New("ifair: mini-batch training (BatchSize > 0) requires the analytic gradient; unset ForceNumericalGradient")
		}
		if o.Epochs <= 0 {
			o.Epochs = 30
		}
		if o.LearnRate <= 0 {
			o.LearnRate = 0.01
		}
	}
	return nil
}

// analyticGradient reports whether the fast analytic-gradient path applies.
func (o *Options) analyticGradient() bool { return !o.ForceNumericalGradient }
