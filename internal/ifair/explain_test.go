package ifair

import (
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestAttributeWeightsSorted(t *testing.T) {
	model := &Model{
		Prototypes: mat.NewDense(1, 3),
		Alpha:      []float64{0.2, 0.9, 0.1},
		P:          2,
	}
	ws := model.AttributeWeights([]string{"income", "debt", "gender"})
	if ws[0].Name != "debt" || ws[1].Name != "income" || ws[2].Name != "gender" {
		t.Fatalf("order = %v", ws)
	}
	if ws[0].Weight != 0.9 || ws[2].Index != 2 {
		t.Fatalf("fields wrong: %v", ws)
	}
}

func TestAttributeWeightsDefaultNames(t *testing.T) {
	model := &Model{Prototypes: mat.NewDense(1, 2), Alpha: []float64{1, 2}, P: 2}
	ws := model.AttributeWeights(nil)
	if ws[0].Name != "attr1" || ws[1].Name != "attr0" {
		t.Fatalf("default names wrong: %v", ws)
	}
}

func TestAttributeWeightsNameMismatchPanics(t *testing.T) {
	model := &Model{Prototypes: mat.NewDense(1, 2), Alpha: []float64{1, 2}, P: 2}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	model.AttributeWeights([]string{"only-one"})
}

func TestAttributeWeightsStableOnTies(t *testing.T) {
	model := &Model{Prototypes: mat.NewDense(1, 3), Alpha: []float64{1, 1, 1}, P: 2}
	ws := model.AttributeWeights(nil)
	if ws[0].Index != 0 || ws[1].Index != 1 || ws[2].Index != 2 {
		t.Fatalf("tie order not stable: %v", ws)
	}
}

// TestProtectedWeightsStayLowUnderIFairB ties the interpretability view to
// the behavioural claim: after iFair-b training the protected attribute's
// learned weight should be among the smallest.
func TestProtectedWeightsStayLowUnderIFairB(t *testing.T) {
	model, _ := fittedModelWithProtected(t)
	ws := model.AttributeWeights(nil)
	last := ws[len(ws)-1]
	if last.Index != 2 {
		// Not necessarily the very last, but it must sit in the lower
		// half of the weight ordering.
		half := len(ws) / 2
		found := false
		for _, w := range ws[half:] {
			if w.Index == 2 {
				found = true
			}
		}
		if !found {
			t.Fatalf("protected attribute ranked too high: %v", ws)
		}
	}
}

func fittedModelWithProtected(t *testing.T) (*Model, *mat.Dense) {
	t.Helper()
	x := randomDataWithProtected(40, 3, 2, 4)
	model, err := Fit(x, Options{
		K: 3, Lambda: 1, Mu: 1,
		Protected: []int{2}, Init: InitMaskedProtected,
		Seed: 4, MaxIterations: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	return model, x
}

// randomDataWithProtected builds data whose protected column (index prot)
// is binary.
func randomDataWithProtected(m, n, prot int, seed int64) *mat.Dense {
	x := mat.NewDense(m, n)
	rng := newTestRNG(seed)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			if j == prot {
				x.Set(i, j, float64(rng.Intn(2)))
			} else {
				x.Set(i, j, rng.NormFloat64())
			}
		}
	}
	return x
}

func newTestRNG(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
