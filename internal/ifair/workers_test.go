package ifair

import (
	"math"
	"math/rand"
	"os"
	"testing"

	"repro/internal/mat"
)

// evalAt builds an objective over m records with the given worker count
// and evaluates it twice at the same deterministic point, returning both
// losses and the second call's gradient. Two consecutive evaluations are
// the historical failure mode: the first call could leave stale partial
// cells behind for the second to sum.
func evalAt(m, workers int, opts Options) (loss1, loss2 float64, grad []float64) {
	const n = 4
	rng := rand.New(rand.NewSource(7))
	x := randomData(rng, m, n)
	if err := opts.fill(m, n); err != nil {
		panic(err)
	}
	opts.Workers = workers
	obj := newObjective(x, opts, rng)
	theta := make([]float64, obj.paramLen())
	trng := rand.New(rand.NewSource(11))
	for i := range theta {
		theta[i] = trng.NormFloat64()
	}
	grad = make([]float64, len(theta))
	loss1 = obj.Eval(theta, grad)
	loss2 = obj.Eval(theta, grad)
	return loss1, loss2, grad
}

// testWorkerSweep returns the non-sequential worker counts the
// bit-identity tests compare against Workers:1. IFAIR_TEST_WORKER_SWEEP=1
// (set by `make test-workers`) widens the sweep to every count in
// [2, 17].
func testWorkerSweep() []int {
	if os.Getenv("IFAIR_TEST_WORKER_SWEEP") != "" {
		w := make([]int, 0, 16)
		for i := 2; i <= 17; i++ {
			w = append(w, i)
		}
		return w
	}
	return []int{2, 3, 5, 8, 16, 17}
}

// TestEvalBitIdenticalAcrossWorkerCounts is the property the unified
// internal/par plan guarantees: for any record count and any worker
// count, loss AND gradient are bit-identical to the sequential
// evaluation — including on a second evaluation, where the old
// chunk-accounting bug surfaced.
func TestEvalBitIdenticalAcrossWorkerCounts(t *testing.T) {
	opts := Options{K: 3, Lambda: 1, Mu: 1} // pairwise fairness: m(m−1)/2 pairs
	sizes := []int{0, 1, 2, 3, 5, 7, 8, 16, 31, 32, 33, 63, 64}
	if os.Getenv("IFAIR_TEST_WORKER_SWEEP") != "" {
		sizes = sizes[:0]
		for m := 0; m <= 64; m++ {
			sizes = append(sizes, m)
		}
	}
	for _, m := range sizes {
		want1, want2, wantGrad := evalAt(m, 1, opts)
		for _, w := range testWorkerSweep() {
			got1, got2, gotGrad := evalAt(m, w, opts)
			if math.Float64bits(got1) != math.Float64bits(want1) {
				t.Fatalf("m=%d workers=%d: first loss %v != sequential %v", m, w, got1, want1)
			}
			if math.Float64bits(got2) != math.Float64bits(want2) {
				t.Fatalf("m=%d workers=%d: second loss %v != sequential %v", m, w, got2, want2)
			}
			for i := range wantGrad {
				if math.Float64bits(gotGrad[i]) != math.Float64bits(wantGrad[i]) {
					t.Fatalf("m=%d workers=%d: grad[%d] = %v != sequential %v", m, w, i, gotGrad[i], wantGrad[i])
				}
			}
		}
	}
}

// TestStaleLossPartialsReproducer is the minimal reproducer of the bug
// this package's par migration fixed: a Workers:16 objective over m=100
// records whose forward pass (100 items) and fairness pass (400 pairs)
// share chunked state with different effective totals. Under the old
// accounting the forward pass launched 15 chunks but summed 16 cells, so
// the second evaluation folded a stale fairness partial from the first
// into the utility loss. Both evaluations must reproduce the sequential
// loss exactly.
func TestStaleLossPartialsReproducer(t *testing.T) {
	opts := Options{K: 3, Lambda: 1, Mu: 1, Fairness: SampledFairness, PairSamples: 4}
	want1, want2, _ := evalAt(100, 1, opts)
	got1, got2, _ := evalAt(100, 16, opts)
	if math.Float64bits(got1) != math.Float64bits(want1) {
		t.Fatalf("first eval: workers=16 loss %v != sequential %v", got1, want1)
	}
	if math.Float64bits(got2) != math.Float64bits(want2) {
		t.Fatalf("second eval: workers=16 loss %v != sequential %v (stale partial)", got2, want2)
	}
}

// TestAdversarialShapeWorkers pins the m=7, workers=5 shape where the
// old code's ceil-division launched 4 forward chunks while the chunk
// count said 5: with 21 pairwise-fairness pairs the fairness pass filled
// the fifth cell and the next forward summed it.
func TestAdversarialShapeWorkers(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, Mu: 1} // pairwise: 21 pairs over 7 records
	want1, want2, wantGrad := evalAt(7, 1, opts)
	got1, got2, gotGrad := evalAt(7, 5, opts)
	if math.Float64bits(got1) != math.Float64bits(want1) || math.Float64bits(got2) != math.Float64bits(want2) {
		t.Fatalf("losses (%v, %v) != sequential (%v, %v)", got1, got2, want1, want2)
	}
	for i := range wantGrad {
		if math.Float64bits(gotGrad[i]) != math.Float64bits(wantGrad[i]) {
			t.Fatalf("grad[%d] = %v != sequential %v", i, gotGrad[i], wantGrad[i])
		}
	}
}

// TestBuildPairsSampledBudget: sampled mode must yield exactly
// PairSamples distinct partners per record — a self-collision is
// resampled, not dropped — so the pair budget is m·samples as the paper
// specifies.
func TestBuildPairsSampledBudget(t *testing.T) {
	for _, m := range []int{2, 3, 10, 57} {
		const samples = 4
		opts := Options{Fairness: SampledFairness, PairSamples: samples}
		rng := rand.New(rand.NewSource(3))
		pairs := buildPairs(mat.NewDense(m, 1), opts, rng)
		if len(pairs) != m*samples {
			t.Fatalf("m=%d: %d pairs, want %d", m, len(pairs), m*samples)
		}
		perRecord := make([]int, m)
		for _, pr := range pairs {
			if pr.i == pr.j {
				t.Fatalf("m=%d: self-pair (%d, %d)", m, pr.i, pr.j)
			}
			perRecord[pr.i]++
		}
		for i, c := range perRecord {
			if c != samples {
				t.Fatalf("m=%d: record %d got %d partners, want %d", m, i, c, samples)
			}
		}
	}
	for _, m := range []int{0, 1} {
		rng := rand.New(rand.NewSource(3))
		if pairs := buildPairs(mat.NewDense(m, 1), Options{Fairness: SampledFairness, PairSamples: 4}, rng); pairs != nil {
			t.Fatalf("m=%d: pairs = %v, want nil (no distinct partner exists)", m, pairs)
		}
	}
}

// TestFitBitIdenticalAcrossWorkers: the end-to-end guarantee — the
// fitted model (prototypes, weights, loss) is bit-identical for every
// objective worker count.
func TestFitBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomData(rng, 40, 4)
	base := Options{K: 3, Lambda: 1, Mu: 1, Seed: 9, MaxIterations: 25}
	seq, err := Fit(x, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 7, 16} {
		opts := base
		opts.Workers = w
		got, err := Fit(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(got.Loss) != math.Float64bits(seq.Loss) {
			t.Fatalf("workers=%d: loss %v != sequential %v", w, got.Loss, seq.Loss)
		}
		if !mat.Equalish(got.Prototypes, seq.Prototypes, 0) {
			t.Fatalf("workers=%d: prototypes differ from sequential fit", w)
		}
		for i := range seq.Alpha {
			if math.Float64bits(got.Alpha[i]) != math.Float64bits(seq.Alpha[i]) {
				t.Fatalf("workers=%d: alpha[%d] = %v != %v", w, i, got.Alpha[i], seq.Alpha[i])
			}
		}
	}
}

// TestFitParallelConverges: training with objective workers still
// converges to a finite, improving loss (port of the pre-par smoke
// test).
func TestFitParallelConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomData(rng, 30, 3)
	model, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 0.5, Seed: 4, MaxIterations: 40, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.Loss) || math.IsInf(model.Loss, 0) {
		t.Fatalf("non-finite loss %v", model.Loss)
	}
	if err := model.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestTransformParallelBitIdentical: batch transforms chunk rows but a
// row's value never depends on the chunking, for any worker count.
func TestTransformParallelBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randomData(rng, 33, 4)
	model, err := Fit(x, Options{K: 3, Lambda: 1, Mu: 0.5, Seed: 2, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	want := model.Transform(x)
	for _, w := range testWorkerSweep() {
		got := model.TransformParallel(x, w)
		for i, v := range want.Data() {
			if math.Float64bits(got.Data()[i]) != math.Float64bits(v) {
				t.Fatalf("workers=%d: element %d = %v != %v", w, i, got.Data()[i], v)
			}
		}
	}
}
