//go:build race

package ifair

// raceEnabled reports whether the race detector is active.
const raceEnabled = true
