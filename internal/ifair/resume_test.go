package ifair

import (
	"context"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/faultinject"
	"repro/internal/mat"
)

// resumeOpts is the shared problem for the crash-safety suite: small
// enough to sweep kill points quickly, with enough restarts that kills
// land before, at and after the eventual winner.
func resumeOpts() Options {
	return Options{
		K:             3,
		Lambda:        1,
		Mu:            1,
		Protected:     []int{3},
		Init:          InitMaskedProtected,
		Restarts:      3,
		MaxIterations: 40,
		Seed:          11,
	}
}

func resumeData(t *testing.T) *mat.Dense {
	t.Helper()
	return randomData(rand.New(rand.NewSource(17)), 20, 4)
}

func openManager(t *testing.T, dir string, fs checkpoint.FS) *checkpoint.Manager {
	t.Helper()
	m, err := checkpoint.Open(checkpoint.Config{
		Dir: dir, FS: fs, EveryIterations: 1, Interval: time.Hour, Logf: t.Logf,
	})
	if err != nil {
		t.Fatalf("checkpoint.Open(%s): %v", dir, err)
	}
	return m
}

func assertModelsBitIdentical(t *testing.T, label string, want, got *Model) {
	t.Helper()
	if want.Loss != got.Loss {
		t.Fatalf("%s: loss %v != baseline %v", label, got.Loss, want.Loss)
	}
	for j := range want.Alpha {
		if got.Alpha[j] != want.Alpha[j] {
			t.Fatalf("%s: alpha[%d] %v != baseline %v", label, j, got.Alpha[j], want.Alpha[j])
		}
	}
	wp, gp := want.Prototypes.Data(), got.Prototypes.Data()
	for i := range wp {
		if gp[i] != wp[i] {
			t.Fatalf("%s: prototype datum %d %v != baseline %v", label, i, gp[i], wp[i])
		}
	}
}

// killPoints returns the (restart, iteration) sweep. The default covers a
// kill in every restart; IFAIR_TEST_FAULTS=1 widens it with a seeded
// schedule of extra deterministic points.
func killPoints(restarts int) [][2]int {
	points := [][2]int{{0, 1}, {1, 3}, {2, 5}, {0, 8}}
	if os.Getenv("IFAIR_TEST_FAULTS") != "" {
		iters := faultinject.Schedule(23, 3*restarts, 12)
		for i, k := range iters {
			points = append(points, [2]int{i % restarts, k})
		}
	}
	return points
}

// TestResumeBitIdenticalAfterKill is the acceptance criterion of the
// crash-safety tentpole: kill training at restart r, iteration k, resume
// from the checkpoint directory in a "new process" (a fresh Manager), and
// the resumed fit must match an uninterrupted one bit for bit — loss,
// alpha and prototypes.
func TestResumeBitIdenticalAfterKill(t *testing.T) {
	for _, workers := range []int{1, 4} {
		x := resumeData(t)
		baseOpts := resumeOpts()
		baseOpts.RestartWorkers = workers
		baseline, err := FitContext(context.Background(), x, baseOpts)
		if err != nil {
			t.Fatalf("workers=%d: baseline fit: %v", workers, err)
		}

		for _, kp := range killPoints(baseOpts.Restarts) {
			r, k := kp[0], kp[1]
			dir := t.TempDir()

			killOpts := baseOpts
			killOpts.Checkpoint = openManager(t, dir, nil)
			killer, ctx := faultinject.NewKiller(context.Background(), r, k)
			killOpts.Trace = killer
			model, err := FitContext(ctx, x, killOpts)
			if !killer.Fired() {
				// The target restart converged before iteration k; the fit
				// ran to completion and must already match the baseline.
				if err != nil {
					t.Fatalf("workers=%d kill=(%d,%d): unexpected error with unfired killer: %v", workers, r, k, err)
				}
				assertModelsBitIdentical(t, "unfired kill", baseline, model)
				continue
			}
			if err == nil {
				t.Fatalf("workers=%d kill=(%d,%d): killed fit returned no error", workers, r, k)
			}

			resumeOpts := baseOpts
			resumeOpts.Checkpoint = openManager(t, dir, nil)
			resumed, err := FitContext(context.Background(), x, resumeOpts)
			if err != nil {
				t.Fatalf("workers=%d kill=(%d,%d): resumed fit: %v", workers, r, k, err)
			}
			assertModelsBitIdentical(t,
				"workers="+itoa(workers)+" kill=("+itoa(r)+","+itoa(k)+")",
				baseline, resumed)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [8]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// TestCheckpointingDoesNotPerturbTraining pins the zero-interference
// property: an uninterrupted fit with checkpointing enabled is
// bit-identical to one without.
func TestCheckpointingDoesNotPerturbTraining(t *testing.T) {
	x := resumeData(t)
	plain, err := FitContext(context.Background(), x, resumeOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts := resumeOpts()
	opts.Checkpoint = openManager(t, t.TempDir(), nil)
	ckpted, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, "checkpointed", plain, ckpted)
}

// TestSecondRunReplaysEntirelyFromCheckpoint re-fits after a completed
// run: every restart replays from its record, and the model still matches.
func TestSecondRunReplaysEntirelyFromCheckpoint(t *testing.T) {
	x := resumeData(t)
	dir := t.TempDir()
	opts := resumeOpts()
	opts.Checkpoint = openManager(t, dir, nil)
	first, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}

	opts2 := resumeOpts()
	opts2.Checkpoint = openManager(t, dir, nil)
	if got := opts2.Checkpoint.CompletedCount(); got != opts2.Restarts {
		t.Fatalf("CompletedCount = %d, want %d", got, opts2.Restarts)
	}
	second, err := FitContext(context.Background(), x, opts2)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, "replayed", first, second)
}

// TestTrainingSurvivesFullDisk fills the "disk" from the first snapshot
// write on (sticky ENOSPC short writes): training must complete anyway,
// bit-identical to the no-checkpoint baseline, with the failures counted.
func TestTrainingSurvivesFullDisk(t *testing.T) {
	x := resumeData(t)
	baseline, err := FitContext(context.Background(), x, resumeOpts())
	if err != nil {
		t.Fatal(err)
	}

	opts := resumeOpts()
	mgr := openManager(t, t.TempDir(), &faultinject.FS{ShortWrite: faultinject.NewStickyFuse(1)})
	opts.Checkpoint = mgr
	model, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatalf("fit on a full disk failed: %v", err)
	}
	assertModelsBitIdentical(t, "full disk", baseline, model)
	if mgr.WriteErrors() == 0 {
		t.Fatal("no snapshot write failures counted on a full disk")
	}
}

// TestResumeFromCorruptLatestSnapshot flips a bit in the newest snapshot
// of a completed run. The resumed fit must detect the corruption, fall
// back to the previous good snapshot, re-run what it is missing, and
// still produce the bit-identical model.
func TestResumeFromCorruptLatestSnapshot(t *testing.T) {
	x := resumeData(t)
	dir := t.TempDir()
	opts := resumeOpts()
	opts.Checkpoint = openManager(t, dir, nil)
	first, err := FitContext(context.Background(), x, opts)
	if err != nil {
		t.Fatal(err)
	}

	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want ≥2 snapshots, got %v (err %v)", names, err)
	}
	latest := names[len(names)-1]
	data, err := os.ReadFile(latest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(latest, faultinject.FlipBit(data, len(data)*5), 0o644); err != nil {
		t.Fatal(err)
	}

	mgr := openManager(t, dir, nil)
	if len(mgr.CorruptFiles()) == 0 {
		t.Fatal("corrupt snapshot not detected")
	}
	opts2 := resumeOpts()
	opts2.Checkpoint = mgr
	resumed, err := FitContext(context.Background(), x, opts2)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, "corrupt fallback", first, resumed)
}

// TestCheckpointIgnoredForDifferentProblem changes the data between runs:
// the stale checkpoint must be fingerprint-rejected, not silently
// replayed into the wrong problem.
func TestCheckpointIgnoredForDifferentProblem(t *testing.T) {
	dir := t.TempDir()
	opts := resumeOpts()
	opts.Checkpoint = openManager(t, dir, nil)
	if _, err := FitContext(context.Background(), resumeData(t), opts); err != nil {
		t.Fatal(err)
	}

	other := randomData(rand.New(rand.NewSource(99)), 20, 4)
	plain, err := FitContext(context.Background(), other, resumeOpts())
	if err != nil {
		t.Fatal(err)
	}
	opts2 := resumeOpts()
	opts2.Checkpoint = openManager(t, dir, nil)
	fresh, err := FitContext(context.Background(), other, opts2)
	if err != nil {
		t.Fatal(err)
	}
	assertModelsBitIdentical(t, "fingerprint reset", plain, fresh)
}
