package ifair

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
	"repro/internal/optimize"
)

func randomData(rng *rand.Rand, m, n int) *mat.Dense {
	x := mat.NewDense(m, n)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return x
}

// newTestObjective builds an objective plus a random parameter point.
func newTestObjective(seed int64, opts Options) (*objective, []float64) {
	rng := rand.New(rand.NewSource(seed))
	x := randomData(rng, 8, 4)
	if err := opts.fill(8, 4); err != nil {
		panic(err)
	}
	obj := newObjective(x, opts, rng)
	theta := initialTheta(x, opts, rng)
	return obj, theta
}

// TestAnalyticGradientMatchesNumeric is the most important test in the
// package: it validates the hand-derived backpropagation through the
// softmax prototype mapping against central differences, for several
// hyper-parameter regimes.
func TestAnalyticGradientMatchesNumeric(t *testing.T) {
	cases := []struct {
		name string
		opts Options
	}{
		{"utility only", Options{K: 3, Lambda: 1, Mu: 0}},
		{"fairness only", Options{K: 3, Lambda: 0, Mu: 1}},
		{"both", Options{K: 3, Lambda: 0.7, Mu: 1.3}},
		{"protected masked", Options{K: 2, Lambda: 1, Mu: 1, Protected: []int{3}, Init: InitMaskedProtected}},
		{"sampled pairs", Options{K: 3, Lambda: 1, Mu: 1, Fairness: SampledFairness, PairSamples: 4}},
		{"uniform protos", Options{K: 4, Lambda: 1, Mu: 0.5, ProtoInit: InitUniform}},
		{"p=1.5", Options{K: 3, Lambda: 1, Mu: 1, P: 1.5}},
		{"p=3", Options{K: 3, Lambda: 1, Mu: 1, P: 3}},
		{"p=2 with root", Options{K: 3, Lambda: 1, Mu: 1, TakeRoot: true}},
		{"p=3 with root", Options{K: 3, Lambda: 1, Mu: 0.5, P: 3, TakeRoot: true}},
		{"inverse kernel", Options{K: 3, Lambda: 1, Mu: 1, Kernel: InverseKernel}},
		{"inverse kernel with root", Options{K: 3, Lambda: 1, Mu: 1, Kernel: InverseKernel, TakeRoot: true}},
		{"inverse kernel p=3", Options{K: 3, Lambda: 1, Mu: 1, Kernel: InverseKernel, P: 3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 3; seed++ {
				obj, theta := newTestObjective(seed, tc.opts)
				if disc := optimize.CheckGradient(obj, theta, 1e-5); disc > 1e-4 {
					t.Fatalf("seed %d: gradient discrepancy %v", seed, disc)
				}
			}
		})
	}
}

// Property: analytic gradient matches numeric at random points, not only at
// initialisation.
func TestGradientCheckAtRandomPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		opts := Options{K: 2, Lambda: 1, Mu: 1}
		if err := opts.fill(6, 3); err != nil {
			return false
		}
		x := randomData(rng, 6, 3)
		obj := newObjective(x, opts, rng)
		theta := make([]float64, obj.paramLen())
		for i := range theta {
			theta[i] = rng.NormFloat64()
		}
		return optimize.CheckGradient(obj, theta, 1e-5) < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestLossOnlyAgreesWithEval(t *testing.T) {
	obj, theta := newTestObjective(7, Options{K: 3, Lambda: 0.5, Mu: 2})
	grad := make([]float64, obj.paramLen())
	if lossA, lossB := obj.Eval(theta, grad), obj.lossOnly(theta); math.Abs(lossA-lossB) > 1e-10 {
		t.Fatalf("Eval loss %v != lossOnly %v", lossA, lossB)
	}
}

func TestLossNonNegative(t *testing.T) {
	f := func(seed int64) bool {
		obj, theta := newTestObjective(seed, Options{K: 2, Lambda: 1, Mu: 1})
		return obj.lossOnly(theta) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestPairwisePairCount(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, Mu: 1}
	if err := opts.fill(10, 3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	obj := newObjective(randomData(rng, 10, 3), opts, rng)
	if want := 10 * 9 / 2; len(obj.pairs) != want {
		t.Fatalf("pairs = %d, want %d", len(obj.pairs), want)
	}
}

func TestSampledPairCountBounded(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, Mu: 1, Fairness: SampledFairness, PairSamples: 5}
	if err := opts.fill(20, 3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	obj := newObjective(randomData(rng, 20, 3), opts, rng)
	if len(obj.pairs) > 20*5 {
		t.Fatalf("pairs = %d, want ≤ 100", len(obj.pairs))
	}
	for _, p := range obj.pairs {
		if p.i == p.j {
			t.Fatal("self-pair found")
		}
	}
}

func TestNoPairsWhenMuZero(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, Mu: 0}
	if err := opts.fill(10, 3); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	obj := newObjective(randomData(rng, 10, 3), opts, rng)
	if len(obj.pairs) != 0 {
		t.Fatalf("pairs = %d, want 0 when µ = 0", len(obj.pairs))
	}
}

func TestTargetDistancesIgnoreProtected(t *testing.T) {
	// Two records identical except on the protected column must have a
	// zero target distance.
	x := mat.FromRows([][]float64{
		{1, 2, 0},
		{1, 2, 9},
	})
	opts := Options{K: 1, Lambda: 1, Mu: 1, Protected: []int{2}}
	if err := opts.fill(2, 3); err != nil {
		t.Fatal(err)
	}
	obj := newObjective(x, opts, rand.New(rand.NewSource(1)))
	if len(obj.pairs) != 1 || obj.target[0] != 0 {
		t.Fatalf("target = %v, want [0]", obj.target)
	}
}

func TestNonProtectedIndices(t *testing.T) {
	got := nonProtectedIndices(5, []int{1, 3})
	want := []int{0, 2, 4}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v, want %v", got, want)
		}
	}
}

// TestNumericalPathAgreesWithAnalytic validates the ForceNumericalGradient
// escape hatch: same loss, near-identical gradient.
func TestNumericalPathAgreesWithAnalytic(t *testing.T) {
	analytic := Options{K: 2, Lambda: 1, Mu: 1}
	numeric := analytic
	numeric.ForceNumericalGradient = true

	objA, theta := newTestObjective(5, analytic)
	objN, _ := newTestObjective(5, numeric)
	gA := make([]float64, objA.paramLen())
	gN := make([]float64, objN.paramLen())
	lossA := objA.Eval(theta, gA)
	lossN := objN.Eval(theta, gN)
	if math.Abs(lossA-lossN) > 1e-10 {
		t.Fatalf("losses differ: %v vs %v", lossA, lossN)
	}
	for i := range gA {
		denom := math.Max(1, math.Abs(gA[i]))
		if math.Abs(gA[i]-gN[i])/denom > 1e-4 {
			t.Fatalf("gradient %d differs: %v vs %v", i, gA[i], gN[i])
		}
	}
}

func TestMinkowskiP1PathLoss(t *testing.T) {
	// p = 1 with the literal root has subgradient kinks; the loss must
	// still be finite and the gradient usable.
	opts := Options{K: 2, Lambda: 1, Mu: 1, P: 1, TakeRoot: true}
	obj, theta := newTestObjective(3, opts)
	grad := make([]float64, obj.paramLen())
	loss := obj.Eval(theta, grad)
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss = %v", loss)
	}
	var nonzero bool
	for _, g := range grad {
		if g != 0 {
			nonzero = true
		}
		if math.IsNaN(g) {
			t.Fatal("NaN gradient")
		}
	}
	if !nonzero {
		t.Fatal("gradient identically zero")
	}
}
