package ifair

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/mat"
)

func TestWarmStartValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x := randomData(rng, 20, 3)
	donor, err := Fit(x, Options{K: 2, Lambda: 1, Seed: 1, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}

	if _, err := Fit(x, Options{K: 3, Lambda: 1, WarmStart: donor}); err == nil {
		t.Fatal("K mismatch accepted")
	}
	wide := randomData(rng, 20, 4)
	if _, err := Fit(wide, Options{K: 2, Lambda: 1, WarmStart: donor}); err == nil {
		t.Fatal("dims mismatch accepted")
	}
	bad := &Model{Prototypes: mat.NewDense(2, 3), Alpha: []float64{1, -1, 1}, P: 2}
	if _, err := Fit(x, Options{K: 2, Lambda: 1, WarmStart: bad}); err == nil {
		t.Fatal("invalid donor model accepted")
	}
}

// warmStartTheta must be the exact inverse of modelFromTheta's packing:
// rebuilding a model from the packed vector reproduces the donor.
func TestWarmStartThetaRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomData(rng, 30, 4)
	donor, err := Fit(x, Options{K: 3, Lambda: 1, Mu: 0.5, Seed: 7, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	got := modelFromTheta(warmStartTheta(donor), 4, Options{K: 3, P: donor.P, Kernel: donor.Kernel})
	for j := range donor.Alpha {
		if math.Abs(got.Alpha[j]-donor.Alpha[j]) > 1e-12 {
			t.Fatalf("alpha[%d] = %g, want %g", j, got.Alpha[j], donor.Alpha[j])
		}
	}
	for i, v := range donor.Prototypes.Data() {
		if got.Prototypes.Data()[i] != v {
			t.Fatalf("prototype datum %d = %g, want %g", i, got.Prototypes.Data()[i], v)
		}
	}
}

// Continuing training from a fitted model with a monotone optimizer must
// never end up worse than the donor's loss on the same problem.
func TestWarmStartNeverWorseThanDonor(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomData(rng, 40, 3)
	opts := Options{K: 3, Lambda: 1, Mu: 1, Seed: 11, MaxIterations: 8}
	donor, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	warm := opts
	warm.WarmStart = donor
	warm.MaxIterations = 20
	refit, err := Fit(x, warm)
	if err != nil {
		t.Fatal(err)
	}
	if refit.Loss > donor.Loss+1e-9 {
		t.Fatalf("warm refit loss %g worse than donor loss %g", refit.Loss, donor.Loss)
	}
}

func TestWarmStartDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomData(rng, 30, 3)
	donor, err := Fit(x, Options{K: 2, Lambda: 1, Seed: 5, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	opts := Options{K: 2, Lambda: 1, Mu: 1, Seed: 5, MaxIterations: 10, Restarts: 2, WarmStart: donor}
	a, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Loss != b.Loss {
		t.Fatalf("losses differ: %g vs %g", a.Loss, b.Loss)
	}
	for i, v := range a.Prototypes.Data() {
		if b.Prototypes.Data()[i] != v {
			t.Fatal("prototypes differ across identical warm-started fits")
		}
	}
}

// A warm start changes restart 0's trajectory, so checkpoints must not be
// shared between warm and cold runs — or between different donors.
func TestWarmStartChangesCheckpointFingerprint(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomData(rng, 20, 3)
	cold := Options{K: 2, Lambda: 1}
	donor, err := Fit(x, Options{K: 2, Lambda: 1, Seed: 9, MaxIterations: 5})
	if err != nil {
		t.Fatal(err)
	}
	warm := cold
	warm.WarmStart = donor
	if checkpointFingerprint(x, &cold) == checkpointFingerprint(x, &warm) {
		t.Fatal("fingerprint ignores warm start")
	}
	donor2 := &Model{
		Prototypes: mat.NewDenseData(donor.K(), donor.Dims(),
			append([]float64(nil), donor.Prototypes.Data()...)),
		Alpha: append([]float64(nil), donor.Alpha...),
		P:     donor.P,
	}
	donor2.Prototypes.Data()[0] += 0.5
	warm2 := cold
	warm2.WarmStart = donor2
	if checkpointFingerprint(x, &warm) == checkpointFingerprint(x, &warm2) {
		t.Fatal("fingerprint ignores donor parameters")
	}
}
