//go:build !race

package ifair

// raceEnabled reports whether the race detector is active. Allocation
// assertions only hold without it: the detector itself adds bookkeeping
// allocations to instrumented code.
const raceEnabled = false
