package ifair

import (
	"math/rand"
	"testing"

	"repro/internal/knn"
	"repro/internal/mat"
)

// TestNeighborPairsBitIdenticalAcrossWorkers: the neighbour sampler's
// pair list must be a pure function of (data, options, seed) — the
// kd-tree fan-out obeys the internal/par contract and the rng is
// consumed serially — so every Workers value yields the same pairs.
func TestNeighborPairsBitIdenticalAcrossWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m, n := 300, 4
	x := randomData(rng, m, n)
	opts := Options{
		K: 2, Lambda: 1, Mu: 1, Protected: []int{3},
		Fairness: NeighborFairness, PairSamples: 5, NeighborK: 12,
	}
	if err := opts.fill(m, n); err != nil {
		t.Fatal(err)
	}
	build := func(workers int) []pair {
		o := opts
		o.Workers = workers
		return buildPairs(x, o, rand.New(rand.NewSource(17)))
	}
	want := build(1)
	if len(want) != m*opts.PairSamples {
		t.Fatalf("pair budget %d, want %d", len(want), m*opts.PairSamples)
	}
	for _, workers := range []int{2, 4, 8} {
		got := build(workers)
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: pair %d = %v, want %v", workers, i, got[i], want[i])
			}
		}
	}
}

// TestNeighborPairsComeFromNeighborPool: every sampled partner must be
// one of the record's NeighborK nearest neighbours in the non-protected
// subspace, with no duplicates per record and no self-pairs.
func TestNeighborPairsComeFromNeighborPool(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	m, n := 150, 3
	x := randomData(rng, m, n)
	opts := Options{
		K: 2, Lambda: 1, Mu: 1, Protected: []int{2},
		Fairness: NeighborFairness, PairSamples: 4, NeighborK: 10,
	}
	if err := opts.fill(m, n); err != nil {
		t.Fatal(err)
	}
	pairs := buildPairs(x, opts, rand.New(rand.NewSource(1)))

	pool := knn.NewKDTree(nonProtectedMatrix(x, opts.Protected)).AllNeighbors(opts.NeighborK)
	inPool := make([]map[int]bool, m)
	for i, nb := range pool {
		inPool[i] = make(map[int]bool, len(nb))
		for _, j := range nb {
			inPool[i][j] = true
		}
	}
	seen := make(map[pair]bool, len(pairs))
	for _, pr := range pairs {
		if pr.i == pr.j {
			t.Fatalf("self-pair %v", pr)
		}
		if !inPool[pr.i][pr.j] {
			t.Fatalf("pair %v: %d is not among %d's %d nearest neighbours", pr, pr.j, pr.i, opts.NeighborK)
		}
		if seen[pr] {
			t.Fatalf("duplicate pair %v", pr)
		}
		seen[pr] = true
	}
}

// TestNeighborPairsSmallPool: when the dataset (or NeighborK) leaves
// fewer than PairSamples neighbours, the record pairs with its whole
// pool instead of over-sampling.
func TestNeighborPairsSmallPool(t *testing.T) {
	x := mat.FromRows([][]float64{{0}, {1}, {2}, {3}})
	opts := Options{
		K: 1, Lambda: 1, Mu: 1,
		Fairness: NeighborFairness, PairSamples: 10, NeighborK: 2,
	}
	if err := opts.fill(4, 1); err != nil {
		t.Fatal(err)
	}
	pairs := buildPairs(x, opts, rand.New(rand.NewSource(1)))
	perRecord := make([]int, 4)
	for _, pr := range pairs {
		perRecord[pr.i]++
	}
	for i, c := range perRecord {
		if c != 2 {
			t.Fatalf("record %d pairs %d times, want its full pool of 2", i, c)
		}
	}
}

// TestNeighborPairsOwnerOrdered: all pair builders must emit pairs in
// non-decreasing owner order — the mini-batch CSR ownership index
// assumes it.
func TestNeighborPairsOwnerOrdered(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	x := randomData(rng, 90, 3)
	for _, mode := range []FairnessMode{PairwiseFairness, SampledFairness, NeighborFairness} {
		opts := Options{K: 1, Lambda: 1, Mu: 1, Fairness: mode, PairSamples: 3, NeighborK: 6}
		if err := opts.fill(90, 3); err != nil {
			t.Fatal(err)
		}
		pairs := buildPairs(x, opts, rand.New(rand.NewSource(2)))
		for p := 1; p < len(pairs); p++ {
			if pairs[p].i < pairs[p-1].i {
				t.Fatalf("%s: pair %d owner %d precedes %d", mode, p, pairs[p].i, pairs[p-1].i)
			}
		}
	}
}

// TestNeighborFairnessFitImprovesLoss: an end-to-end L-BFGS fit under
// NeighborFairness trains and improves on its initial point.
func TestNeighborFairnessFitImprovesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m, n := 60, 4
	x := randomData(rng, m, n)
	opts := Options{
		K: 3, Lambda: 1, Mu: 1, Protected: []int{3},
		Fairness: NeighborFairness, PairSamples: 4, NeighborK: 8,
		Seed: 5, MaxIterations: 40,
	}
	model, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	filled := opts
	if err := filled.fill(m, n); err != nil {
		t.Fatal(err)
	}
	seedRNG := rand.New(rand.NewSource(opts.Seed))
	obj := newObjective(x, filled, seedRNG)
	theta0 := initialTheta(x, filled, seedRNG)
	if loss0 := obj.lossOnly(theta0); model.Loss >= loss0 {
		t.Fatalf("loss %v did not improve on initial %v", model.Loss, loss0)
	}
}
