package ifair

import (
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/optimize"
)

// pair is one (i, j) record pair entering the fairness loss.
type pair struct{ i, j int }

// objective evaluates L = λ·L_util + µ·L_fair (Def. 9) and its gradient
// with respect to the packed parameter vector
//
//	θ = [a_0 … a_{N−1}, v_{0,0} … v_{K−1,N−1}]
//
// where α_n = a_n² keeps attribute weights non-negative under the
// unconstrained optimizer.
//
// Gradients are analytic for every supported configuration — any Minkowski
// exponent p ≥ 1, the optional 1/p root, and both membership kernels; a
// central-difference fallback remains available for validation
// (Options.ForceNumericalGradient).
type objective struct {
	x      *mat.Dense // M×N training records
	pairs  []pair     // fairness pairs
	target []float64  // d(x*_i, x*_j) for each pair, squared Euclidean on non-protected dims
	opts   Options
	m, n   int

	// scratch buffers reused across evaluations
	alpha []float64
	u     *mat.Dense // M×K memberships
	raw   *mat.Dense // M×K rootless kernel distances s_ik (for the root chain)
	gval  *mat.Dense // M×K kernel weights g(D_ik) (InverseKernel backward)
	xt    *mat.Dense // M×N transformed records
	g     *mat.Dense // M×N upstream gradient ∂L/∂x̃

	// per-worker scratch (index 0 is also the sequential path)
	workers   int
	q         [][]float64  // upstream on u, one buffer per worker
	lossPart  []float64    // partial losses
	gPart     []*mat.Dense // partial upstream gradients (parallel fairness)
	gradVPart [][]float64  // partial prototype gradients (parallel backward)
	gradAPart [][]float64  // partial α gradients (parallel backward)
}

// newObjective precomputes the fairness pair list and target distances.
func newObjective(x *mat.Dense, opts Options, rng *rand.Rand) *objective {
	m, n := x.Dims()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	o := &objective{
		x:       x,
		opts:    opts,
		m:       m,
		n:       n,
		alpha:   make([]float64, n),
		u:       mat.NewDense(m, opts.K),
		raw:     mat.NewDense(m, opts.K),
		gval:    mat.NewDense(m, opts.K),
		xt:      mat.NewDense(m, n),
		g:       mat.NewDense(m, n),
		workers: workers,
	}
	o.q = make([][]float64, workers)
	o.lossPart = make([]float64, workers)
	o.gradVPart = make([][]float64, workers)
	o.gradAPart = make([][]float64, workers)
	for w := 0; w < workers; w++ {
		o.q[w] = make([]float64, opts.K)
		if w > 0 {
			// Worker 0 writes straight into the caller's gradient slices;
			// only the extra workers need private partial buffers.
			o.gradVPart[w] = make([]float64, opts.K*n)
			o.gradAPart[w] = make([]float64, n)
		}
	}
	if workers > 1 && opts.Mu > 0 {
		o.gPart = make([]*mat.Dense, workers)
		for w := 1; w < workers; w++ {
			o.gPart[w] = mat.NewDense(m, n)
		}
	}
	if opts.Mu > 0 {
		o.pairs = buildPairs(m, opts, rng)
		nonProt := nonProtectedIndices(n, opts.Protected)
		o.target = make([]float64, len(o.pairs))
		for p, pr := range o.pairs {
			o.target[p] = maskedSqDist(x.Row(pr.i), x.Row(pr.j), nonProt)
		}
	}
	return o
}

// clone returns an objective sharing o's immutable problem data — the
// training matrix, the fairness pair list and the target distances — with
// private scratch buffers, so clones can be evaluated concurrently (one
// per restart under FitContext).
func (o *objective) clone() *objective {
	c := &objective{
		x:       o.x,
		pairs:   o.pairs,
		target:  o.target,
		opts:    o.opts,
		m:       o.m,
		n:       o.n,
		alpha:   make([]float64, o.n),
		u:       mat.NewDense(o.m, o.opts.K),
		raw:     mat.NewDense(o.m, o.opts.K),
		gval:    mat.NewDense(o.m, o.opts.K),
		xt:      mat.NewDense(o.m, o.n),
		g:       mat.NewDense(o.m, o.n),
		workers: o.workers,
	}
	c.q = make([][]float64, c.workers)
	c.lossPart = make([]float64, c.workers)
	c.gradVPart = make([][]float64, c.workers)
	c.gradAPart = make([][]float64, c.workers)
	for w := 0; w < c.workers; w++ {
		c.q[w] = make([]float64, c.opts.K)
		if w > 0 {
			c.gradVPart[w] = make([]float64, c.opts.K*c.n)
			c.gradAPart[w] = make([]float64, c.n)
		}
	}
	if c.workers > 1 && c.opts.Mu > 0 {
		c.gPart = make([]*mat.Dense, c.workers)
		for w := 1; w < c.workers; w++ {
			c.gPart[w] = mat.NewDense(c.m, c.n)
		}
	}
	return c
}

// buildPairs enumerates all pairs or samples PairSamples partners per
// record, depending on the fairness mode.
func buildPairs(m int, opts Options, rng *rand.Rand) []pair {
	if opts.Fairness == PairwiseFairness {
		pairs := make([]pair, 0, m*(m-1)/2)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
		return pairs
	}
	pairs := make([]pair, 0, m*opts.PairSamples)
	for i := 0; i < m; i++ {
		for s := 0; s < opts.PairSamples; s++ {
			j := rng.Intn(m)
			if j == i {
				continue
			}
			pairs = append(pairs, pair{i, j})
		}
	}
	return pairs
}

// nonProtectedIndices returns the column indices not listed as protected.
func nonProtectedIndices(n int, protected []int) []int {
	isProt := make([]bool, n)
	for _, p := range protected {
		isProt[p] = true
	}
	out := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if !isProt[j] {
			out = append(out, j)
		}
	}
	return out
}

// maskedSqDist is the squared Euclidean distance restricted to the given
// coordinate subset: d(x*_i, x*_j)² of Def. 1.
func maskedSqDist(a, b []float64, idx []int) float64 {
	var s float64
	for _, j := range idx {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// paramLen returns the packed parameter-vector length.
func (o *objective) paramLen() int { return o.n + o.opts.K*o.n }

// decode unpacks θ into α (via α = a²) and a K×N prototype view.
func (o *objective) decode(theta []float64) (alpha []float64, protos []float64) {
	for j := 0; j < o.n; j++ {
		o.alpha[j] = theta[j] * theta[j]
	}
	return o.alpha, theta[o.n:]
}

// Eval implements optimize.Objective.
func (o *objective) Eval(theta, grad []float64) float64 {
	if o.opts.analyticGradient() {
		return o.evalAnalytic(theta, grad)
	}
	loss := o.lossOnly(theta)
	optimize.NumericalGradient(o.lossOnly, theta, grad, 1e-6)
	return loss
}

// rawDistance computes s = Σ α_n·|x_n − v_n|^p, the rootless Def. 7 form.
func rawDistance(x, v, alpha []float64, p float64) float64 {
	var s float64
	if p == 2 {
		for n := range x {
			d := x[n] - v[n]
			s += alpha[n] * d * d
		}
		return s
	}
	for n := range x {
		s += alpha[n] * math.Pow(math.Abs(x[n]-v[n]), p)
	}
	return s
}

// forward computes memberships u, transforms x̃ and the utility loss (plus
// its upstream gradient into o.g when withGrad is set). Raw distances and
// kernel weights are recorded for the backward pass.
func (o *objective) forward(alpha, protos []float64, withGrad bool) float64 {
	runChunks(o.m, o.workers, func(w, lo, hi int) {
		o.lossPart[w] = o.forwardRange(alpha, protos, withGrad, lo, hi)
	})
	var loss float64
	for w := 0; w < numChunks(o.m, o.workers); w++ {
		loss += o.lossPart[w]
	}
	return loss
}

// forwardRange runs the forward pass for records [lo, hi).
func (o *objective) forwardRange(alpha, protos []float64, withGrad bool, lo, hi int) float64 {
	k := o.opts.K
	var loss float64
	for i := lo; i < hi; i++ {
		xi := o.x.Row(i)
		ui := o.u.Row(i)
		ri := o.raw.Row(i)
		gv := o.gval.Row(i)

		for kk := 0; kk < k; kk++ {
			ri[kk] = rawDistance(xi, protos[kk*o.n:(kk+1)*o.n], alpha, o.opts.P)
		}
		switch o.opts.Kernel {
		case InverseKernel:
			var sum float64
			for kk := 0; kk < k; kk++ {
				d := ri[kk]
				if o.opts.TakeRoot {
					d = math.Pow(d, 1/o.opts.P)
				}
				gv[kk] = 1 / (1 + d)
				sum += gv[kk]
			}
			for kk := 0; kk < k; kk++ {
				ui[kk] = gv[kk] / sum
			}
		default: // ExpKernel: softmax over z = −D with max-shift
			maxZ := math.Inf(-1)
			for kk := 0; kk < k; kk++ {
				d := ri[kk]
				if o.opts.TakeRoot {
					d = math.Pow(d, 1/o.opts.P)
				}
				z := -d
				ui[kk] = z
				if z > maxZ {
					maxZ = z
				}
			}
			var sum float64
			for kk := 0; kk < k; kk++ {
				ui[kk] = math.Exp(ui[kk] - maxZ)
				sum += ui[kk]
			}
			for kk := 0; kk < k; kk++ {
				ui[kk] /= sum
			}
		}

		xti := o.xt.Row(i)
		for n := range xti {
			xti[n] = 0
		}
		for kk := 0; kk < k; kk++ {
			mat.AddScaled(xti, ui[kk], protos[kk*o.n:(kk+1)*o.n])
		}
		if withGrad {
			gi := o.g.Row(i)
			for n := range gi {
				gi[n] = 0
			}
		}
		if o.opts.Lambda > 0 {
			if withGrad {
				gi := o.g.Row(i)
				for n := 0; n < o.n; n++ {
					r := xti[n] - xi[n]
					loss += o.opts.Lambda * r * r
					gi[n] += 2 * o.opts.Lambda * r
				}
			} else {
				for n := 0; n < o.n; n++ {
					r := xti[n] - xi[n]
					loss += o.opts.Lambda * r * r
				}
			}
		}
	}
	return loss
}

// fairnessLoss accumulates the pairwise loss; with withGrad it also adds
// the upstream gradients into o.g. Because a pair touches two arbitrary
// record rows, parallel workers accumulate into private partial matrices
// that are reduced in worker order afterwards.
func (o *objective) fairnessLoss(withGrad bool) float64 {
	if o.opts.Mu == 0 || len(o.pairs) == 0 {
		return 0
	}
	chunks := numChunks(len(o.pairs), o.workers)
	if withGrad && chunks > 1 {
		for w := 1; w < chunks; w++ {
			clear(o.gPart[w].Data())
		}
	}
	runChunks(len(o.pairs), o.workers, func(w, lo, hi int) {
		dst := o.g
		if w > 0 {
			dst = o.gPart[w]
		}
		o.lossPart[w] = o.fairnessRange(withGrad, dst, lo, hi)
	})
	var loss float64
	for w := 0; w < chunks; w++ {
		loss += o.lossPart[w]
	}
	if withGrad && chunks > 1 {
		g := o.g.Data()
		for w := 1; w < chunks; w++ {
			part := o.gPart[w].Data()
			for i, v := range part {
				g[i] += v
			}
		}
	}
	return loss
}

// fairnessRange evaluates pairs [lo, hi), writing upstream gradients into
// dst when withGrad is set.
func (o *objective) fairnessRange(withGrad bool, dst *mat.Dense, lo, hi int) float64 {
	var loss float64
	for p := lo; p < hi; p++ {
		pr := o.pairs[p]
		xa := o.xt.Row(pr.i)
		xb := o.xt.Row(pr.j)
		d := mat.SqDist(xa, xb)
		e := d - o.target[p]
		loss += o.opts.Mu * e * e
		if withGrad {
			w := 4 * o.opts.Mu * e
			ga := dst.Row(pr.i)
			gb := dst.Row(pr.j)
			for n := 0; n < o.n; n++ {
				diff := xa[n] - xb[n]
				ga[n] += w * diff
				gb[n] -= w * diff
			}
		}
	}
	return loss
}

// lossOnly evaluates the objective without gradients; it also serves as the
// finite-difference target for ForceNumericalGradient.
func (o *objective) lossOnly(theta []float64) float64 {
	alpha, protos := o.decode(theta)
	loss := o.forward(alpha, protos, false)
	return loss + o.fairnessLoss(false)
}

// evalAnalytic computes the loss and its exact gradient. Derivation: with
// raw distance s_ik = Σ_n α_n·|x_in − v_kn|^p, kernel input
// D_ik = s_ik^{1/p} (or s_ik without the root), membership weight
// g_ik = g(D_ik) and u = g/Σg, the chain rule gives for upstream
// q_ik = ∂L/∂u_ik (here q_ik = (∂L/∂x̃_i)·v_k):
//
//	∂L/∂D_ik = (g'(D_ik)/S_i)·(q_ik − Σ_l u_il·q_il)
//	           with g'/S = −u        for g = exp(−D)
//	           and  g'/S = −u·g      for g = 1/(1+D)
//	∂D/∂s    = 1 (no root) or (1/p)·s^{1/p−1}
//	∂s/∂v_kn = −α_n·p·|x_in − v_kn|^{p−1}·sign(x_in − v_kn)
//	∂s/∂α_n  = |x_in − v_kn|^p
//	∂L/∂a_n  = ∂L/∂α_n · 2a_n                     (α = a²)
//
// plus the direct path ∂L/∂v_kn += Σ_i u_ik·(∂L/∂x̃_i)_n.
func (o *objective) evalAnalytic(theta, grad []float64) float64 {
	alpha, protos := o.decode(theta)
	for i := range grad {
		grad[i] = 0
	}
	gradA := grad[:o.n]
	gradV := grad[o.n:]

	loss := o.forward(alpha, protos, true)
	loss += o.fairnessLoss(true)

	chunks := numChunks(o.m, o.workers)
	for w := 1; w < chunks; w++ {
		clear(o.gradVPart[w])
		clear(o.gradAPart[w])
	}
	runChunks(o.m, o.workers, func(w, lo, hi int) {
		gvDst, gaDst := gradV, gradA
		if w > 0 {
			gvDst, gaDst = o.gradVPart[w], o.gradAPart[w]
		}
		o.backwardRange(alpha, protos, o.q[w], gvDst, gaDst, lo, hi)
	})
	for w := 1; w < chunks; w++ {
		for i, v := range o.gradVPart[w] {
			gradV[i] += v
		}
		for i, v := range o.gradAPart[w] {
			gradA[i] += v
		}
	}

	// chain through α = a².
	for n := 0; n < o.n; n++ {
		gradA[n] *= 2 * theta[n]
	}
	return loss
}

// backwardRange backpropagates records [lo, hi) into the given gradient
// buffers, using q as per-worker scratch.
func (o *objective) backwardRange(alpha, protos, q, gradV, gradA []float64, lo, hi int) {
	k := o.opts.K
	p := o.opts.P
	for i := lo; i < hi; i++ {
		xi := o.x.Row(i)
		ui := o.u.Row(i)
		ri := o.raw.Row(i)
		gvi := o.gval.Row(i)
		gi := o.g.Row(i)

		var qbar float64
		for kk := 0; kk < k; kk++ {
			q[kk] = mat.Dot(gi, protos[kk*o.n:(kk+1)*o.n])
			qbar += ui[kk] * q[kk]
		}
		for kk := 0; kk < k; kk++ {
			uik := ui[kk]
			centred := q[kk] - qbar
			var dLdD float64
			switch o.opts.Kernel {
			case InverseKernel:
				dLdD = -uik * gvi[kk] * centred
			default:
				dLdD = -uik * centred
			}
			dLds := dLdD
			if o.opts.TakeRoot {
				s := ri[kk]
				if s < 1e-12 {
					s = 1e-12
				}
				dLds *= math.Pow(s, 1/p-1) / p
			}
			vk := protos[kk*o.n : (kk+1)*o.n]
			gv := gradV[kk*o.n : (kk+1)*o.n]
			if p == 2 {
				for n := 0; n < o.n; n++ {
					diff := xi[n] - vk[n]
					gv[n] += uik*gi[n] - dLds*2*alpha[n]*diff
					gradA[n] += dLds * diff * diff
				}
			} else {
				for n := 0; n < o.n; n++ {
					diff := xi[n] - vk[n]
					ad := math.Abs(diff)
					pow1 := math.Pow(ad, p-1)
					sign := 1.0
					if diff < 0 {
						sign = -1
					}
					gv[n] += uik*gi[n] - dLds*alpha[n]*p*pow1*sign
					gradA[n] += dLds * pow1 * ad
				}
			}
		}
	}
}

// Losses evaluates the two loss components (unweighted by λ and µ) of a
// fitted model on data x, for reporting and tests: the reconstruction loss
// of Def. 4 and the fairness loss of Def. 5 over the objective's pair set.
func Losses(m *Model, x *mat.Dense, opts Options) (util, fair float64) {
	rows, _ := x.Dims()
	xt := m.Transform(x)
	for i := 0; i < rows; i++ {
		util += mat.SqDist(x.Row(i), xt.Row(i))
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs := buildPairs(rows, opts, rng)
	nonProt := nonProtectedIndices(x.Cols(), opts.Protected)
	for _, pr := range pairs {
		d := mat.SqDist(xt.Row(pr.i), xt.Row(pr.j))
		t := maskedSqDist(x.Row(pr.i), x.Row(pr.j), nonProt)
		e := d - t
		fair += e * e
	}
	return util, fair
}
