package ifair

import (
	"math"
	"math/rand"

	"repro/internal/knn"
	"repro/internal/mat"
	"repro/internal/optimize"
	"repro/internal/par"
)

// pair is one (i, j) record pair entering the fairness loss.
type pair struct{ i, j int }

// objective evaluates L = λ·L_util + µ·L_fair (Def. 9) and its gradient
// with respect to the packed parameter vector
//
//	θ = [a_0 … a_{N−1}, v_{0,0} … v_{K−1,N−1}]
//
// where α_n = a_n² keeps attribute weights non-negative under the
// unconstrained optimizer.
//
// Gradients are analytic for every supported configuration — any Minkowski
// exponent p ≥ 1, the optional 1/p root, and both membership kernels; a
// central-difference fallback remains available for validation
// (Options.ForceNumericalGradient).
type objective struct {
	x      *mat.Dense // M×N training records
	pairs  []pair     // fairness pairs
	target []float64  // d(x*_i, x*_j) for each pair, squared Euclidean on non-protected dims
	opts   Options
	m, n   int

	// scratch buffers reused across evaluations. The five M-row matrices
	// are allocated lazily on the first full-objective evaluation
	// (ensureFull): a clone that only ever trains through the mini-batch
	// path never pays for them — its scratch is batch-sized (see batch.go).
	alpha []float64
	u     *mat.Dense // M×K memberships
	raw   *mat.Dense // M×K rootless kernel distances s_ik (for the root chain)
	gval  *mat.Dense // M×K kernel weights g(D_ik) (InverseKernel backward)
	xt    *mat.Dense // M×N transformed records
	g     *mat.Dense // M×N upstream gradient ∂L/∂x̃

	// batch is the mini-batch evaluation state (lazily built by EvalBatch).
	batch *batchState

	// Chunked-parallel state. Both plans are fixed by the problem sizes
	// alone (records and fairness pairs respectively), so every partial
	// buffer below has exactly one cell per chunk that runs and every
	// reduction combines them in chunk order — the evaluation is
	// bit-identical for any Workers value. See internal/par.
	workers   int
	planRec   par.Plan      // chunk plan over the m records
	planPair  par.Plan      // chunk plan over the fairness pairs
	lossRec   par.Scalars   // per-chunk forward losses
	lossPair  par.Scalars   // per-chunk fairness losses
	q         [][]float64   // upstream on u, one buffer per record chunk
	gradVPart *par.Partials // partial prototype gradients (backward)
	gradAPart *par.Partials // partial α gradients (backward)

	// Fairness backward indices: pairCoef[p] holds 4µ·e_p from the loss
	// pass, and the CSR adjacency (adjOff, adjPair, adjOther) lists for
	// each record the pairs it appears in plus the opposite endpoint.
	// Each record's upstream gradient row is then owned by exactly one
	// chunk, so no per-chunk m×n partial matrices are needed and the
	// accumulation order per row is fixed by construction.
	pairCoef []float64
	adjOff   []int32
	adjPair  []int32
	adjOther []int32
}

// newObjective precomputes the fairness pair list and target distances.
func newObjective(x *mat.Dense, opts Options, rng *rand.Rand) *objective {
	m, n := x.Dims()
	workers := opts.Workers
	if workers < 1 {
		workers = 1
	}
	o := &objective{
		x:       x,
		opts:    opts,
		m:       m,
		n:       n,
		alpha:   make([]float64, n),
		workers: workers,
	}
	if opts.Mu > 0 {
		o.pairs = buildPairs(x, opts, rng)
		nonProt := nonProtectedIndices(n, opts.Protected)
		o.target = make([]float64, len(o.pairs))
		for p, pr := range o.pairs {
			o.target[p] = maskedSqDist(x.Row(pr.i), x.Row(pr.j), nonProt)
		}
		o.adjOff, o.adjPair, o.adjOther = buildPairAdjacency(m, o.pairs)
	}
	o.initScratch()
	return o
}

// ensureFull allocates the M-row evaluation scratch on first use. The
// full-objective paths (Eval, lossOnly) need one row of each matrix per
// record; the mini-batch path never calls this.
func (o *objective) ensureFull() {
	if o.u != nil {
		return
	}
	o.u = mat.NewDense(o.m, o.opts.K)
	o.raw = mat.NewDense(o.m, o.opts.K)
	o.gval = mat.NewDense(o.m, o.opts.K)
	o.xt = mat.NewDense(o.m, o.n)
	o.g = mat.NewDense(o.m, o.n)
	if len(o.pairs) > 0 {
		o.pairCoef = make([]float64, len(o.pairs))
	}
}

// initScratch sizes the per-chunk evaluation buffers from the two
// chunk plans. Everything here is private mutable state; the problem
// data (x, pairs, target, adjacency) is shared between clones.
func (o *objective) initScratch() {
	o.planRec = par.Chunks(o.m)
	o.planPair = par.Chunks(len(o.pairs))
	o.lossRec = o.planRec.NewScalars()
	o.lossPair = o.planPair.NewScalars()
	o.gradVPart = o.planRec.NewPartials(o.opts.K * o.n)
	o.gradAPart = o.planRec.NewPartials(o.n)
	o.q = make([][]float64, o.planRec.NumChunks())
	for c := range o.q {
		o.q[c] = make([]float64, o.opts.K)
	}
}

// buildPairAdjacency converts the pair list into a CSR index: for each
// record i, adjPair[adjOff[i]:adjOff[i+1]] are the pairs i appears in
// and adjOther the opposite endpoints, in ascending pair order.
func buildPairAdjacency(m int, pairs []pair) (off, pairIdx, other []int32) {
	off = make([]int32, m+1)
	for _, pr := range pairs {
		off[pr.i+1]++
		off[pr.j+1]++
	}
	for i := 0; i < m; i++ {
		off[i+1] += off[i]
	}
	pairIdx = make([]int32, 2*len(pairs))
	other = make([]int32, 2*len(pairs))
	next := make([]int32, m)
	copy(next, off[:m])
	for p, pr := range pairs {
		e := next[pr.i]
		pairIdx[e], other[e] = int32(p), int32(pr.j)
		next[pr.i]++
		e = next[pr.j]
		pairIdx[e], other[e] = int32(p), int32(pr.i)
		next[pr.j]++
	}
	return off, pairIdx, other
}

// clone returns an objective sharing o's immutable problem data — the
// training matrix, the fairness pair list, the target distances and the
// pair adjacency — with private scratch buffers, so clones can be
// evaluated concurrently (one per restart under FitContext).
func (o *objective) clone() *objective {
	c := &objective{
		x:        o.x,
		pairs:    o.pairs,
		target:   o.target,
		adjOff:   o.adjOff,
		adjPair:  o.adjPair,
		adjOther: o.adjOther,
		opts:     o.opts,
		m:        o.m,
		n:        o.n,
		alpha:    make([]float64, o.n),
		workers:  o.workers,
	}
	c.initScratch()
	return c
}

// buildPairs constructs the fairness pair list for the configured mode:
// all pairs, PairSamples uniform partners per record, or PairSamples
// partners drawn from each record's k-nearest-neighbour pool. Every mode
// emits pairs in non-decreasing owner (pair.i) order — the mini-batch
// sub-objective's CSR ownership index depends on it.
func buildPairs(x *mat.Dense, opts Options, rng *rand.Rand) []pair {
	m := x.Rows()
	if opts.Fairness == PairwiseFairness {
		pairs := make([]pair, 0, m*(m-1)/2)
		for i := 0; i < m; i++ {
			for j := i + 1; j < m; j++ {
				pairs = append(pairs, pair{i, j})
			}
		}
		return pairs
	}
	if m < 2 {
		return nil // no distinct partner exists
	}
	if opts.Fairness == NeighborFairness {
		return buildNeighborPairs(x, opts, rng)
	}
	pairs := make([]pair, 0, m*opts.PairSamples)
	for i := 0; i < m; i++ {
		for s := 0; s < opts.PairSamples; s++ {
			// Resample on self-collision instead of dropping the draw, so
			// every record gets exactly PairSamples partners and the pair
			// budget matches the paper's m·samples count.
			j := rng.Intn(m)
			for j == i {
				j = rng.Intn(m)
			}
			pairs = append(pairs, pair{i, j})
		}
	}
	return pairs
}

// buildNeighborPairs pairs each record with PairSamples partners sampled
// without replacement from its NeighborK nearest neighbours in the
// non-protected subspace (exact k-d tree queries). The neighbour lists
// are computed by AllNeighborsWorkers, which is bit-identical for every
// Workers value, and the per-record sampling consumes the rng serially
// in record order — so the pair list is a pure function of (data,
// options, seed) regardless of the worker count.
func buildNeighborPairs(x *mat.Dense, opts Options, rng *rand.Rand) []pair {
	m := x.Rows()
	k := opts.NeighborK
	if k <= 0 {
		k = DefaultNeighborK
	}
	tree := opts.prebuiltNeighbors
	if tree == nil {
		tree = knn.NewKDTree(nonProtectedMatrix(x, opts.Protected))
	}
	neigh := tree.AllNeighborsWorkers(k, opts.Workers)
	pairs := make([]pair, 0, m*opts.PairSamples)
	scratch := make([]int, k)
	for i := 0; i < m; i++ {
		cand := neigh[i]
		if opts.PairSamples >= len(cand) {
			// Fewer neighbours than samples (tiny datasets, or
			// PairSamples > NeighborK): pair with the whole pool.
			for _, j := range cand {
				pairs = append(pairs, pair{i, j})
			}
			continue
		}
		// Partial Fisher–Yates over a scratch copy: the first PairSamples
		// entries are a uniform without-replacement draw from the pool.
		s := scratch[:len(cand)]
		copy(s, cand)
		for t := 0; t < opts.PairSamples; t++ {
			r := t + rng.Intn(len(s)-t)
			s[t], s[r] = s[r], s[t]
			pairs = append(pairs, pair{i, s[t]})
		}
	}
	return pairs
}

// nonProtectedMatrix projects x onto its non-protected columns — the
// subspace Def. 1 measures — returning x itself when nothing is
// protected.
func nonProtectedMatrix(x *mat.Dense, protected []int) *mat.Dense {
	m, n := x.Dims()
	idx := nonProtectedIndices(n, protected)
	if len(idx) == n {
		return x
	}
	sub := mat.NewDense(m, len(idx))
	for i := 0; i < m; i++ {
		src, dst := x.Row(i), sub.Row(i)
		for c, j := range idx {
			dst[c] = src[j]
		}
	}
	return sub
}

// nonProtectedIndices returns the column indices not listed as protected.
func nonProtectedIndices(n int, protected []int) []int {
	isProt := make([]bool, n)
	for _, p := range protected {
		isProt[p] = true
	}
	out := make([]int, 0, n)
	for j := 0; j < n; j++ {
		if !isProt[j] {
			out = append(out, j)
		}
	}
	return out
}

// maskedSqDist is the squared Euclidean distance restricted to the given
// coordinate subset: d(x*_i, x*_j)² of Def. 1.
func maskedSqDist(a, b []float64, idx []int) float64 {
	var s float64
	for _, j := range idx {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// paramLen returns the packed parameter-vector length.
func (o *objective) paramLen() int { return o.n + o.opts.K*o.n }

// decode unpacks θ into α (via α = a²) and a K×N prototype view.
func (o *objective) decode(theta []float64) (alpha []float64, protos []float64) {
	for j := 0; j < o.n; j++ {
		o.alpha[j] = theta[j] * theta[j]
	}
	return o.alpha, theta[o.n:]
}

// Eval implements optimize.Objective.
func (o *objective) Eval(theta, grad []float64) float64 {
	o.ensureFull()
	if o.opts.analyticGradient() {
		return o.evalAnalytic(theta, grad)
	}
	loss := o.lossOnly(theta)
	optimize.NumericalGradient(o.lossOnly, theta, grad, 1e-6)
	return loss
}

// rawDistance computes s = Σ α_n·|x_n − v_n|^p, the rootless Def. 7 form.
func rawDistance(x, v, alpha []float64, p float64) float64 {
	var s float64
	if p == 2 {
		for n := range x {
			d := x[n] - v[n]
			s += alpha[n] * d * d
		}
		return s
	}
	for n := range x {
		s += alpha[n] * math.Pow(math.Abs(x[n]-v[n]), p)
	}
	return s
}

// forward computes memberships u, transforms x̃ and the utility loss (plus
// its upstream gradient into o.g when withGrad is set). Raw distances and
// kernel weights are recorded for the backward pass.
func (o *objective) forward(alpha, protos []float64, withGrad bool) float64 {
	o.planRec.Run(o.workers, func(c, lo, hi int) {
		o.lossRec[c] = o.forwardRange(alpha, protos, withGrad, lo, hi)
	})
	return o.lossRec.Sum()
}

// forwardRange runs the forward pass for records [lo, hi).
func (o *objective) forwardRange(alpha, protos []float64, withGrad bool, lo, hi int) float64 {
	var loss float64
	for i := lo; i < hi; i++ {
		var gi []float64
		if withGrad {
			gi = o.g.Row(i)
		}
		loss += o.forwardRecord(alpha, protos, o.x.Row(i),
			o.u.Row(i), o.raw.Row(i), o.gval.Row(i), o.xt.Row(i), gi, true)
	}
	return loss
}

// forwardRecord computes one record's memberships (into ui), raw
// distances (ri), kernel weights (gv) and transform (xti), returning its
// weighted utility loss (0 unless withUtil). When gi is non-nil it is
// zeroed and, with withUtil, receives the utility upstream gradient —
// the fairness pass accumulates on top of it afterwards. Shared by the
// full-objective range pass and the mini-batch path, which differ only
// in which rows they hand in.
func (o *objective) forwardRecord(alpha, protos, xi, ui, ri, gv, xti, gi []float64, withUtil bool) float64 {
	k := o.opts.K
	for kk := 0; kk < k; kk++ {
		ri[kk] = rawDistance(xi, protos[kk*o.n:(kk+1)*o.n], alpha, o.opts.P)
	}
	switch o.opts.Kernel {
	case InverseKernel:
		var sum float64
		for kk := 0; kk < k; kk++ {
			d := ri[kk]
			if o.opts.TakeRoot {
				d = math.Pow(d, 1/o.opts.P)
			}
			gv[kk] = 1 / (1 + d)
			sum += gv[kk]
		}
		for kk := 0; kk < k; kk++ {
			ui[kk] = gv[kk] / sum
		}
	default: // ExpKernel: softmax over z = −D with max-shift
		maxZ := math.Inf(-1)
		for kk := 0; kk < k; kk++ {
			d := ri[kk]
			if o.opts.TakeRoot {
				d = math.Pow(d, 1/o.opts.P)
			}
			z := -d
			ui[kk] = z
			if z > maxZ {
				maxZ = z
			}
		}
		var sum float64
		for kk := 0; kk < k; kk++ {
			ui[kk] = math.Exp(ui[kk] - maxZ)
			sum += ui[kk]
		}
		for kk := 0; kk < k; kk++ {
			ui[kk] /= sum
		}
	}

	for n := range xti {
		xti[n] = 0
	}
	for kk := 0; kk < k; kk++ {
		mat.AddScaled(xti, ui[kk], protos[kk*o.n:(kk+1)*o.n])
	}
	if gi != nil {
		for n := range gi {
			gi[n] = 0
		}
	}
	var loss float64
	if withUtil && o.opts.Lambda > 0 {
		if gi != nil {
			for n := 0; n < o.n; n++ {
				r := xti[n] - xi[n]
				loss += o.opts.Lambda * r * r
				gi[n] += 2 * o.opts.Lambda * r
			}
		} else {
			for n := 0; n < o.n; n++ {
				r := xti[n] - xi[n]
				loss += o.opts.Lambda * r * r
			}
		}
	}
	return loss
}

// fairnessLoss accumulates the pairwise loss; with withGrad it also adds
// the upstream gradients into o.g. The loss pass chunks over pairs with
// per-chunk partial cells and records each pair's gradient coefficient
// 4µ·e_p; the gradient pass then chunks over records, where each chunk
// exclusively owns its rows of o.g and folds in the incident pairs from
// the precomputed adjacency in ascending pair order. Both passes are
// therefore bit-identical for every worker count, with no per-chunk
// m×n partial matrices.
func (o *objective) fairnessLoss(withGrad bool) float64 {
	if o.opts.Mu == 0 || len(o.pairs) == 0 {
		return 0
	}
	xd, nn, mu := o.xt.Data(), o.n, o.opts.Mu
	o.planPair.Run(o.workers, func(c, lo, hi int) {
		var loss float64
		for p := lo; p < hi; p++ {
			pr := o.pairs[p]
			d := mat.SqDist(xd[pr.i*nn:(pr.i+1)*nn], xd[pr.j*nn:(pr.j+1)*nn])
			e := d - o.target[p]
			loss += mu * e * e
			if withGrad {
				o.pairCoef[p] = 4 * mu * e
			}
		}
		o.lossPair[c] = loss
	})
	if withGrad {
		o.planRec.Run(o.workers, func(_, lo, hi int) {
			o.fairnessBackwardRange(lo, hi)
		})
	}
	return o.lossPair.Sum()
}

// fairnessBackwardRange adds the fairness upstream gradient of records
// [lo, hi) into their rows of o.g. For record i with incident pairs p
// (opposite endpoint j_p) the contribution is
//
//	∂L_fair/∂x̃_i = Σ_p w_p·(x̃_i − x̃_{j_p}) = (Σ_p w_p)·x̃_i − Σ_p w_p·x̃_{j_p}
//
// with w_p = 4µ·e_p from the loss pass. The weighted opposite rows are
// subtracted from g_i edge by edge, then the (Σw)·x̃_i term is added
// once; each record's row is owned by exactly one chunk and the edge
// order is fixed by the adjacency, so the result is independent of the
// worker count.
func (o *objective) fairnessBackwardRange(lo, hi int) {
	xd, gd, nn := o.xt.Data(), o.g.Data(), o.n
	for i := lo; i < hi; i++ {
		start, end := o.adjOff[i], o.adjOff[i+1]
		if start == end {
			continue
		}
		gi := gd[i*nn : (i+1)*nn]
		var wsum float64
		for e := start; e < end; e++ {
			w := o.pairCoef[o.adjPair[e]]
			wsum += w
			xo := xd[int(o.adjOther[e])*nn:]
			xo = xo[:len(gi)]
			for n, v := range xo {
				gi[n] -= w * v
			}
		}
		xti := xd[i*nn : (i+1)*nn]
		for n, v := range xti {
			gi[n] += wsum * v
		}
	}
}

// lossOnly evaluates the objective without gradients; it also serves as the
// finite-difference target for ForceNumericalGradient.
func (o *objective) lossOnly(theta []float64) float64 {
	o.ensureFull()
	alpha, protos := o.decode(theta)
	loss := o.forward(alpha, protos, false)
	return loss + o.fairnessLoss(false)
}

// evalAnalytic computes the loss and its exact gradient. Derivation: with
// raw distance s_ik = Σ_n α_n·|x_in − v_kn|^p, kernel input
// D_ik = s_ik^{1/p} (or s_ik without the root), membership weight
// g_ik = g(D_ik) and u = g/Σg, the chain rule gives for upstream
// q_ik = ∂L/∂u_ik (here q_ik = (∂L/∂x̃_i)·v_k):
//
//	∂L/∂D_ik = (g'(D_ik)/S_i)·(q_ik − Σ_l u_il·q_il)
//	           with g'/S = −u        for g = exp(−D)
//	           and  g'/S = −u·g      for g = 1/(1+D)
//	∂D/∂s    = 1 (no root) or (1/p)·s^{1/p−1}
//	∂s/∂v_kn = −α_n·p·|x_in − v_kn|^{p−1}·sign(x_in − v_kn)
//	∂s/∂α_n  = |x_in − v_kn|^p
//	∂L/∂a_n  = ∂L/∂α_n · 2a_n                     (α = a²)
//
// plus the direct path ∂L/∂v_kn += Σ_i u_ik·(∂L/∂x̃_i)_n.
func (o *objective) evalAnalytic(theta, grad []float64) float64 {
	alpha, protos := o.decode(theta)
	for i := range grad {
		grad[i] = 0
	}
	gradA := grad[:o.n]
	gradV := grad[o.n:]

	loss := o.forward(alpha, protos, true)
	loss += o.fairnessLoss(true)

	o.gradVPart.Reset()
	o.gradAPart.Reset()
	o.planRec.Run(o.workers, func(c, lo, hi int) {
		o.backwardRange(alpha, protos, o.q[c],
			o.gradVPart.Buf(c, gradV), o.gradAPart.Buf(c, gradA), lo, hi)
	})
	o.gradVPart.ReduceInto(gradV)
	o.gradAPart.ReduceInto(gradA)

	// chain through α = a².
	for n := 0; n < o.n; n++ {
		gradA[n] *= 2 * theta[n]
	}
	return loss
}

// backwardRange backpropagates records [lo, hi) into the given gradient
// buffers, using q as per-chunk scratch.
func (o *objective) backwardRange(alpha, protos, q, gradV, gradA []float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		o.backwardRecord(alpha, protos, q, gradV, gradA,
			o.x.Row(i), o.u.Row(i), o.raw.Row(i), o.gval.Row(i), o.g.Row(i))
	}
}

// backwardRecord backpropagates one record — given its forward rows ui,
// ri, gvi and upstream gradient gi — into gradV and gradA, using q as
// K-sized scratch. Shared by the chunked full-objective pass and the
// mini-batch path.
func (o *objective) backwardRecord(alpha, protos, q, gradV, gradA, xi, ui, ri, gvi, gi []float64) {
	k := o.opts.K
	p := o.opts.P
	var qbar float64
	for kk := 0; kk < k; kk++ {
		q[kk] = mat.Dot(gi, protos[kk*o.n:(kk+1)*o.n])
		qbar += ui[kk] * q[kk]
	}
	for kk := 0; kk < k; kk++ {
		uik := ui[kk]
		centred := q[kk] - qbar
		var dLdD float64
		switch o.opts.Kernel {
		case InverseKernel:
			dLdD = -uik * gvi[kk] * centred
		default:
			dLdD = -uik * centred
		}
		dLds := dLdD
		if o.opts.TakeRoot {
			s := ri[kk]
			if s < 1e-12 {
				s = 1e-12
			}
			dLds *= math.Pow(s, 1/p-1) / p
		}
		vk := protos[kk*o.n : (kk+1)*o.n]
		gv := gradV[kk*o.n : (kk+1)*o.n]
		if p == 2 {
			for n := 0; n < o.n; n++ {
				diff := xi[n] - vk[n]
				gv[n] += uik*gi[n] - dLds*2*alpha[n]*diff
				gradA[n] += dLds * diff * diff
			}
		} else {
			for n := 0; n < o.n; n++ {
				diff := xi[n] - vk[n]
				ad := math.Abs(diff)
				pow1 := math.Pow(ad, p-1)
				sign := 1.0
				if diff < 0 {
					sign = -1
				}
				gv[n] += uik*gi[n] - dLds*alpha[n]*p*pow1*sign
				gradA[n] += dLds * pow1 * ad
			}
		}
	}
}

// Losses evaluates the two loss components (unweighted by λ and µ) of a
// fitted model on data x, for reporting and tests: the reconstruction loss
// of Def. 4 and the fairness loss of Def. 5 over the objective's pair set.
func Losses(m *Model, x *mat.Dense, opts Options) (util, fair float64) {
	rows, _ := x.Dims()
	xt := m.Transform(x)
	for i := 0; i < rows; i++ {
		util += mat.SqDist(x.Row(i), xt.Row(i))
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	pairs := buildPairs(x, opts, rng)
	nonProt := nonProtectedIndices(x.Cols(), opts.Protected)
	for _, pr := range pairs {
		d := mat.SqDist(xt.Row(pr.i), xt.Row(pr.j))
		t := maskedSqDist(x.Row(pr.i), x.Row(pr.j), nonProt)
		e := d - t
		fair += e * e
	}
	return util, fair
}
