package ifair

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/mat"
)

// TestEvalBatchPartitionSumsToFullObjective is the correctness anchor of
// the mini-batch path: because every record's utility term and every
// fairness pair is owned by exactly one batch, summing the sub-objective
// (and its gradient) over any partition of the records must reproduce
// the full objective bit-for-bit up to floating-point reassociation.
func TestEvalBatchPartitionSumsToFullObjective(t *testing.T) {
	for _, mode := range []FairnessMode{PairwiseFairness, SampledFairness, NeighborFairness} {
		t.Run(mode.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(5))
			m, n := 40, 4
			x := randomData(rng, m, n)
			opts := Options{
				K: 3, Lambda: 0.8, Mu: 1.2, Protected: []int{3},
				Fairness: mode, PairSamples: 4, NeighborK: 8,
			}
			if err := opts.fill(m, n); err != nil {
				t.Fatal(err)
			}
			obj := newObjective(x, opts, rng)
			theta := initialTheta(x, opts, rng)

			fullGrad := make([]float64, obj.paramLen())
			fullLoss := obj.Eval(theta, fullGrad)

			for _, batchSize := range []int{1, 7, 16, 40} {
				sumGrad := make([]float64, obj.paramLen())
				grad := make([]float64, obj.paramLen())
				var sumLoss float64
				for lo := 0; lo < m; lo += batchSize {
					hi := lo + batchSize
					if hi > m {
						hi = m
					}
					batch := make([]int, hi-lo)
					for i := range batch {
						batch[i] = lo + i
					}
					sumLoss += obj.EvalBatch(batch, theta, grad)
					for i := range grad {
						sumGrad[i] += grad[i]
					}
				}
				if math.Abs(sumLoss-fullLoss) > 1e-9*(1+math.Abs(fullLoss)) {
					t.Fatalf("batch=%d: summed loss %v != full loss %v", batchSize, sumLoss, fullLoss)
				}
				for i := range fullGrad {
					if math.Abs(sumGrad[i]-fullGrad[i]) > 1e-9*(1+math.Abs(fullGrad[i])) {
						t.Fatalf("batch=%d: grad[%d] = %v, full %v", batchSize, i, sumGrad[i], fullGrad[i])
					}
				}
			}
		})
	}
}

// TestEvalBatchShuffledBatches: ownership does not depend on batches
// being sorted or contiguous — any permutation partition sums to the
// full objective too.
func TestEvalBatchShuffledBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	m, n := 30, 3
	x := randomData(rng, m, n)
	opts := Options{K: 2, Lambda: 1, Mu: 1, Fairness: NeighborFairness, PairSamples: 3, NeighborK: 6}
	if err := opts.fill(m, n); err != nil {
		t.Fatal(err)
	}
	obj := newObjective(x, opts, rng)
	theta := initialTheta(x, opts, rng)
	full := obj.Eval(theta, make([]float64, obj.paramLen()))

	perm := rng.Perm(m)
	grad := make([]float64, obj.paramLen())
	var sum float64
	for lo := 0; lo < m; lo += 11 {
		hi := lo + 11
		if hi > m {
			hi = m
		}
		sum += obj.EvalBatch(perm[lo:hi], theta, grad)
	}
	if math.Abs(sum-full) > 1e-9*(1+math.Abs(full)) {
		t.Fatalf("shuffled batches sum to %v, full objective %v", sum, full)
	}
}

// TestEvalBatchAllocFree: after the warm-up evaluation, a batch
// evaluation performs zero allocations — the property that keeps SGD
// epochs allocation-flat no matter how large the dataset is.
func TestEvalBatchAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are unreliable under the race detector")
	}
	rng := rand.New(rand.NewSource(2))
	m, n := 500, 5
	x := randomData(rng, m, n)
	opts := Options{K: 4, Lambda: 1, Mu: 1, Fairness: NeighborFairness, PairSamples: 4, NeighborK: 8}
	if err := opts.fill(m, n); err != nil {
		t.Fatal(err)
	}
	obj := newObjective(x, opts, rng)
	theta := initialTheta(x, opts, rng)
	grad := make([]float64, obj.paramLen())
	batch := make([]int, 64)
	for i := range batch {
		batch[i] = i * 7 % m
	}
	obj.EvalBatch(batch, theta, grad) // warm-up sizes the scratch
	allocs := testing.AllocsPerRun(10, func() {
		obj.EvalBatch(batch, theta, grad)
	})
	if allocs != 0 {
		t.Fatalf("EvalBatch allocated %.0f objects per call after warm-up, want 0", allocs)
	}
}

// TestEvalBatchCloneSkipsFullScratch: a clone that only trains through
// the batch path must not allocate the five M-row matrices.
func TestEvalBatchCloneSkipsFullScratch(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m, n := 100, 3
	x := randomData(rng, m, n)
	opts := Options{K: 2, Lambda: 1, Mu: 1, Fairness: SampledFairness, PairSamples: 2}
	if err := opts.fill(m, n); err != nil {
		t.Fatal(err)
	}
	obj := newObjective(x, opts, rng)
	c := obj.clone()
	if c.u != nil || c.xt != nil || c.g != nil {
		t.Fatal("clone allocated full-evaluation scratch eagerly")
	}
	theta := initialTheta(x, opts, rng)
	grad := make([]float64, c.paramLen())
	c.EvalBatch([]int{0, 1, 2}, theta, grad)
	if c.u != nil {
		t.Fatal("batch evaluation allocated the M-row scratch")
	}
	c.Eval(theta, grad) // full path still works on demand
	if c.u == nil {
		t.Fatal("full evaluation did not allocate its scratch")
	}
}

// TestFitSGDReducesLossAndIsDeterministic: end-to-end mini-batch
// training through FitContext.
func TestFitSGDReducesLossAndIsDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	m, n := 120, 4
	x := randomData(rng, m, n)
	opts := Options{
		K: 3, Lambda: 1, Mu: 0.5,
		Fairness: NeighborFairness, PairSamples: 4, NeighborK: 8,
		BatchSize: 32, Epochs: 25, LearnRate: 0.05,
		Seed: 11,
	}
	model, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Loss must improve on the initial point of the same restart seed.
	filled := opts
	if err := filled.fill(m, n); err != nil {
		t.Fatal(err)
	}
	seedRNG := rand.New(rand.NewSource(opts.Seed))
	obj := newObjective(x, filled, seedRNG)
	theta0 := initialTheta(x, filled, seedRNG)
	if loss0 := obj.lossOnly(theta0); model.Loss >= loss0 {
		t.Fatalf("SGD loss %v did not improve on initial %v", model.Loss, loss0)
	}

	again, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	if model.Loss != again.Loss {
		t.Fatalf("same seed gave losses %v and %v", model.Loss, again.Loss)
	}
	for i, v := range model.Alpha {
		if again.Alpha[i] != v {
			t.Fatalf("same seed gave different α at %d", i)
		}
	}
}

// TestFitSGDRestartWorkersBitIdentical: parallel restarts share the base
// objective's pair list but clone batch scratch, so the winning model is
// bit-identical for every restart worker count.
func TestFitSGDRestartWorkersBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	x := randomData(rng, 80, 3)
	opts := Options{
		K: 2, Lambda: 1, Mu: 1,
		Fairness: NeighborFairness, PairSamples: 3, NeighborK: 6,
		BatchSize: 16, Epochs: 8, LearnRate: 0.03,
		Restarts: 3, Seed: 21,
	}
	want, err := Fit(x, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, rw := range []int{2, 3} {
		opts.RestartWorkers = rw
		got, err := Fit(x, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got.Loss != want.Loss {
			t.Fatalf("RestartWorkers=%d: loss %v != serial %v", rw, got.Loss, want.Loss)
		}
		for i := range want.Alpha {
			if math.Float64bits(got.Alpha[i]) != math.Float64bits(want.Alpha[i]) {
				t.Fatalf("RestartWorkers=%d: α differs at %d", rw, i)
			}
		}
	}
}

// TestBatchSizeRejectsNumericalGradient: the batch path has no
// finite-difference fallback.
func TestBatchSizeRejectsNumericalGradient(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, BatchSize: 8, ForceNumericalGradient: true}
	if err := opts.fill(10, 3); err == nil ||
		!strings.Contains(err.Error(), "analytic gradient") {
		t.Fatalf("err = %v, want analytic-gradient requirement", err)
	}
}

// TestPairwiseRowLimit: with the fairness loss active, PairwiseFairness
// must refuse row counts whose O(M²) pair list would be an outage, and
// the error must point at the scalable modes.
func TestPairwiseRowLimit(t *testing.T) {
	opts := Options{K: 2, Lambda: 1, Mu: 1, Fairness: PairwiseFairness}
	err := opts.fill(MaxPairwiseRows+1, 3)
	if err == nil {
		t.Fatal("expected an error above MaxPairwiseRows")
	}
	for _, want := range []string{"SampledFairness", "NeighborFairness"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
	// At the limit, and above it with µ = 0 (no pair list is built), the
	// configuration stays legal.
	opts = Options{K: 2, Lambda: 1, Mu: 1, Fairness: PairwiseFairness}
	if err := opts.fill(MaxPairwiseRows, 3); err != nil {
		t.Fatalf("at the limit: %v", err)
	}
	opts = Options{K: 2, Lambda: 1, Mu: 0, Fairness: PairwiseFairness}
	if err := opts.fill(MaxPairwiseRows+1, 3); err != nil {
		t.Fatalf("µ=0 above the limit: %v", err)
	}
}

// TestFitRejectsPairwiseAboveLimit pins the guard at the Fit boundary,
// without paying for a real fit: the error arrives before training.
func TestFitRejectsPairwiseAboveLimit(t *testing.T) {
	m := MaxPairwiseRows + 1
	x := mat.NewDense(m, 1)
	_, err := Fit(x, Options{K: 1, Lambda: 1, Mu: 1, Fairness: PairwiseFairness})
	if err == nil || !strings.Contains(err.Error(), "NeighborFairness") {
		t.Fatalf("err = %v, want the pairwise row-limit error", err)
	}
}
