package ifair

import (
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestRunChunksCoversRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		total := 1 + rng.Intn(50)
		workers := 1 + rng.Intn(8)
		covered := make([]int, total)
		runChunks(total, workers, func(w, lo, hi int) {
			for i := lo; i < hi; i++ {
				covered[i]++
			}
		})
		for _, c := range covered {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestRunChunksSequentialFallback(t *testing.T) {
	calls := 0
	runChunks(10, 1, func(w, lo, hi int) {
		calls++
		if w != 0 || lo != 0 || hi != 10 {
			t.Fatalf("sequential chunk = (%d, %d, %d)", w, lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

func TestNumChunksMatchesRunChunks(t *testing.T) {
	for total := 1; total <= 20; total++ {
		for workers := 1; workers <= 6; workers++ {
			var calls atomic.Int64
			runChunks(total, workers, func(w, lo, hi int) { calls.Add(1) })
			if got := numChunks(total, workers); int64(got) < calls.Load() {
				t.Fatalf("numChunks(%d,%d) = %d < actual %d", total, workers, got, calls.Load())
			}
		}
	}
}

// TestParallelGradientMatchesSequential is the correctness anchor for the
// parallel path: same loss and near-identical gradient for any worker
// count (partial sums reorder, so exact equality is not required).
func TestParallelGradientMatchesSequential(t *testing.T) {
	for _, kernel := range []Kernel{ExpKernel, InverseKernel} {
		rng := rand.New(rand.NewSource(3))
		x := randomData(rng, 40, 5)
		base := Options{K: 4, Lambda: 1, Mu: 1, Kernel: kernel, Protected: []int{4}}
		if err := base.fill(5); err != nil {
			t.Fatal(err)
		}
		seqObj := newObjective(x, base, rand.New(rand.NewSource(1)))
		theta := initialTheta(x, base, rand.New(rand.NewSource(2)))
		gSeq := make([]float64, seqObj.paramLen())
		lossSeq := seqObj.Eval(theta, gSeq)

		for _, workers := range []int{2, 3, 7, 16} {
			par := base
			par.Workers = workers
			parObj := newObjective(x, par, rand.New(rand.NewSource(1)))
			gPar := make([]float64, parObj.paramLen())
			lossPar := parObj.Eval(theta, gPar)
			if math.Abs(lossSeq-lossPar) > 1e-9*(1+math.Abs(lossSeq)) {
				t.Fatalf("kernel %v workers %d: loss %v vs %v", kernel, workers, lossPar, lossSeq)
			}
			for i := range gSeq {
				denom := math.Max(1, math.Abs(gSeq[i]))
				if math.Abs(gSeq[i]-gPar[i])/denom > 1e-9 {
					t.Fatalf("kernel %v workers %d: grad[%d] %v vs %v", kernel, workers, i, gPar[i], gSeq[i])
				}
			}
		}
	}
}

func TestParallelEvalDeterministicForFixedWorkers(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := randomData(rng, 30, 4)
	opts := Options{K: 3, Lambda: 1, Mu: 1, Workers: 4}
	if err := opts.fill(4); err != nil {
		t.Fatal(err)
	}
	obj := newObjective(x, opts, rand.New(rand.NewSource(1)))
	theta := initialTheta(x, opts, rand.New(rand.NewSource(2)))
	g1 := make([]float64, obj.paramLen())
	g2 := make([]float64, obj.paramLen())
	l1 := obj.Eval(theta, g1)
	l2 := obj.Eval(theta, g2)
	if l1 != l2 {
		t.Fatalf("losses differ across evaluations: %v vs %v", l1, l2)
	}
	for i := range g1 {
		if g1[i] != g2[i] {
			t.Fatal("gradient not bitwise deterministic for fixed worker count")
		}
	}
}

func TestFitParallelConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	x := randomData(rng, 60, 4)
	model, err := Fit(x, Options{K: 4, Lambda: 1, Mu: 1, Workers: 4, Seed: 1, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(model.Loss) || model.Loss < 0 {
		t.Fatalf("loss = %v", model.Loss)
	}
}
