package ifair

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/ingest"
	"repro/internal/knn"
	"repro/internal/stats"
)

// streamTestStore ingests a deterministic clean CSV (two numeric
// features, one protected categorical, a boolean label) into a temp
// shard store and opens it.
func streamTestStore(t *testing.T, rows, shardRows int) *ingest.Stream {
	t.Helper()
	rng := rand.New(rand.NewSource(99))
	var sb strings.Builder
	sb.WriteString("x1,x2,group,label\n")
	for i := 0; i < rows; i++ {
		group := "A"
		if rng.Intn(2) == 1 {
			group = "B"
		}
		fmt.Fprintf(&sb, "%.6f,%.6f,%s,%t\n", rng.NormFloat64(), 10+5*rng.NormFloat64(), group, rng.Intn(2) == 1)
	}
	dir := t.TempDir()
	schema := ingest.Schema{
		Features: []ingest.Column{
			{Name: "x1"},
			{Name: "x2"},
			{Name: "group", Levels: []string{"A", "B"}, Protected: true},
		},
		Outcome: "label",
	}
	if _, err := ingest.Run(context.Background(), strings.NewReader(sb.String()), ingest.Config{
		Dir: dir, Schema: schema, ShardRows: shardRows,
	}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	st, err := ingest.OpenStream(dir, nil)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	return st
}

// TestFitStreamMatchesInMemoryFit is the acceptance bar for the streaming
// path: fitting from the shard store (shard-sweep fill, sweep-built
// neighbour index, CRC verification per shard) must land on the same
// objective value as an in-memory fit over the same rows and the same
// standardisation transform, to 1e-9 on clean data — the streaming
// machinery introduces zero numerical drift. The standardisation moments
// themselves are checked against the batch helpers in internal/ingest's
// TestIngestClean.
func TestFitStreamMatchesInMemoryFit(t *testing.T) {
	st := streamTestStore(t, 90, 16)
	opts := Options{
		K: 3, Lambda: 1, Mu: 1,
		Protected: st.ProtectedCols(),
		Fairness:  NeighborFairness,
		Seed:      7,
	}

	model, x, err := FitStream(st, opts)
	if err != nil {
		t.Fatalf("FitStream: %v", err)
	}

	matz, err := st.Materialize()
	if err != nil {
		t.Fatalf("materialize: %v", err)
	}
	rows := make([][]float64, matz.X.Rows())
	for i := range rows {
		rows[i] = matz.X.Row(i) // aliases matz.X storage
	}
	means, stds := st.MeanStd()
	stats.ApplyStandardize(rows, means, stds)
	ref, err := Fit(matz.X, opts)
	if err != nil {
		t.Fatalf("in-memory Fit: %v", err)
	}

	// Same transform, different plumbing: the matrices are bit-identical.
	if x.Rows() != matz.X.Rows() || x.Cols() != matz.X.Cols() {
		t.Fatalf("matrix shape %dx%d, want %dx%d", x.Rows(), x.Cols(), matz.X.Rows(), matz.X.Cols())
	}
	for i, v := range x.Data() {
		if v != matz.X.Data()[i] {
			t.Fatalf("standardised cell %d: stream %v, in-memory %v", i, v, matz.X.Data()[i])
		}
	}
	if model.Loss == 0 || ref.Loss == 0 {
		t.Fatalf("degenerate losses: stream %v, ref %v", model.Loss, ref.Loss)
	}
	if diff := math.Abs(model.Loss - ref.Loss); diff > 1e-9*(1+math.Abs(ref.Loss)) {
		t.Fatalf("streaming loss %v != in-memory loss %v (diff %g)", model.Loss, ref.Loss, diff)
	}
}

// TestFitStreamEmptyStore: a store with zero good rows must surface
// ErrNoData, not a panic or a degenerate fit.
func TestFitStreamEmptyStore(t *testing.T) {
	dir := t.TempDir()
	if _, err := ingest.Run(context.Background(), strings.NewReader("a,b\n"), ingest.Config{Dir: dir}); err != nil {
		t.Fatalf("ingest: %v", err)
	}
	st, err := ingest.OpenStream(dir, nil)
	if err != nil {
		t.Fatalf("open stream: %v", err)
	}
	if _, _, err := FitStream(st, Options{K: 2, Lambda: 1}); err != ErrNoData {
		t.Fatalf("err = %v, want ErrNoData", err)
	}
}

// TestFitPrebuiltTreeBitIdentical: supplying a prebuilt kd-tree over the
// non-protected subspace must not perturb a single bit of the fit — the
// pair list, and therefore the whole deterministic optimisation, is
// identical with and without it.
func TestFitPrebuiltTreeBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomData(rng, 120, 4)
	opts := Options{
		K: 3, Lambda: 1, Mu: 1, Protected: []int{3},
		Fairness: NeighborFairness, Seed: 11,
	}
	plain, err := Fit(x, opts)
	if err != nil {
		t.Fatalf("plain fit: %v", err)
	}
	withTree := opts
	withTree.prebuiltNeighbors = knn.NewKDTree(nonProtectedMatrix(x, opts.Protected))
	pre, err := Fit(x, withTree)
	if err != nil {
		t.Fatalf("prebuilt fit: %v", err)
	}
	if plain.Loss != pre.Loss {
		t.Fatalf("losses differ: %v vs %v", plain.Loss, pre.Loss)
	}
	for i := range plain.Alpha {
		if plain.Alpha[i] != pre.Alpha[i] {
			t.Fatalf("alpha[%d] differs: %v vs %v", i, plain.Alpha[i], pre.Alpha[i])
		}
	}
	for i, v := range plain.Prototypes.Data() {
		if pre.Prototypes.Data()[i] != v {
			t.Fatalf("prototype cell %d differs: %v vs %v", i, v, pre.Prototypes.Data()[i])
		}
	}
}
