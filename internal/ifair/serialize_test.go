package ifair

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/mat"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	model, x := fittedModel(t, 21)
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !mat.Equalish(got.Prototypes, model.Prototypes, 0) {
		t.Fatal("prototypes changed in round trip")
	}
	for i := range model.Alpha {
		if got.Alpha[i] != model.Alpha[i] {
			t.Fatal("alpha changed in round trip")
		}
	}
	if got.P != model.P || got.TakeRoot != model.TakeRoot || got.Loss != model.Loss {
		t.Fatal("scalar fields changed in round trip")
	}
	// The decoded model must transform identically.
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 5; i++ {
		rec := make([]float64, model.Dims())
		for j := range rec {
			rec[j] = rng.NormFloat64()
		}
		a := model.TransformRow(rec)
		b := got.TransformRow(rec)
		for j := range a {
			if a[j] != b[j] {
				t.Fatal("decoded model transforms differently")
			}
		}
	}
	_ = x
}

func TestDecodeModelRejectsGarbage(t *testing.T) {
	if _, err := DecodeModel(strings.NewReader("not json")); err == nil {
		t.Fatal("expected error for invalid JSON")
	}
}

func TestDecodeModelRejectsWrongVersion(t *testing.T) {
	r := strings.NewReader(`{"version": 99, "k": 1, "n": 1, "alpha": [1], "prototypes": [0]}`)
	if _, err := DecodeModel(r); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("err = %v, want version error", err)
	}
}

func TestDecodeModelValidatesShapes(t *testing.T) {
	cases := map[string]string{
		"bad dims":          `{"version":1,"k":0,"n":1,"alpha":[1],"prototypes":[]}`,
		"negative k":        `{"version":1,"k":-2,"n":1,"alpha":[1],"prototypes":[0]}`,
		"negative n":        `{"version":1,"k":1,"n":-1,"alpha":[],"prototypes":[]}`,
		"alpha mismatch":    `{"version":1,"k":1,"n":2,"alpha":[1],"prototypes":[0,0]}`,
		"alpha too long":    `{"version":1,"k":1,"n":1,"alpha":[1,1],"prototypes":[0]}`,
		"proto mismatch":    `{"version":1,"k":2,"n":2,"alpha":[1,1],"prototypes":[0,0]}`,
		"negative weight":   `{"version":1,"k":1,"n":1,"alpha":[-1],"prototypes":[0]}`,
		"p below one":       `{"version":1,"k":1,"n":1,"p":0.5,"alpha":[1],"prototypes":[0]}`,
		"negative p":        `{"version":1,"k":1,"n":1,"p":-2,"alpha":[1],"prototypes":[0]}`,
		"missing version":   `{"k":1,"n":1,"alpha":[1],"prototypes":[0]}`,
		"negative kernel":   `{"version":1,"k":1,"n":1,"kernel":-1,"alpha":[1],"prototypes":[0]}`,
		"truncated payload": `{"version":1,"k":1,`,
	}
	for name, payload := range cases {
		if _, err := DecodeModel(strings.NewReader(payload)); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestLoadModelFile(t *testing.T) {
	model, _ := fittedModel(t, 33)
	dir := t.TempDir()
	path := filepath.Join(dir, "m.json")
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.K() != model.K() || got.Dims() != model.Dims() {
		t.Fatalf("loaded model is %d×%d, want %d×%d", got.K(), got.Dims(), model.K(), model.Dims())
	}
	if _, err := LoadModelFile(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("expected error for missing file")
	}
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte(`{"version":1,"k":1,"n":2,"alpha":[1],"prototypes":[0,0]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadModelFile(bad); err == nil || !strings.Contains(err.Error(), "bad.json") {
		t.Fatalf("err = %v, want decode error naming the file", err)
	}
}

func TestDecodeModelRejectsUnknownKernel(t *testing.T) {
	r := strings.NewReader(`{"version":1,"k":1,"n":1,"kernel":7,"alpha":[1],"prototypes":[0]}`)
	if _, err := DecodeModel(r); err == nil || !strings.Contains(err.Error(), "kernel") {
		t.Fatalf("err = %v, want kernel error", err)
	}
}

func TestEncodeDecodePreservesKernel(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	x := randomData(rng, 20, 3)
	model, err := Fit(x, Options{K: 2, Lambda: 1, Mu: 1, Kernel: InverseKernel, Seed: 1, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kernel != InverseKernel {
		t.Fatalf("kernel = %v, want inverse", got.Kernel)
	}
}

func TestDecodeModelDefaultsPToTwo(t *testing.T) {
	r := strings.NewReader(`{"version":1,"k":1,"n":1,"alpha":[1],"prototypes":[0.5]}`)
	m, err := DecodeModel(r)
	if err != nil {
		t.Fatal(err)
	}
	if m.P != 2 {
		t.Fatalf("P = %v, want default 2", m.P)
	}
}
