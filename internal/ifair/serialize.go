package ifair

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"repro/internal/mat"
)

// modelJSON is the on-disk representation of a fitted model. The format is
// versioned so future changes stay backward compatible.
type modelJSON struct {
	Version    int       `json:"version"`
	K          int       `json:"k"`
	N          int       `json:"n"`
	P          float64   `json:"p"`
	TakeRoot   bool      `json:"take_root"`
	Kernel     int       `json:"kernel,omitempty"`
	Alpha      []float64 `json:"alpha"`
	Prototypes []float64 `json:"prototypes"` // row-major K×N
	Loss       float64   `json:"loss"`
}

const modelFormatVersion = 1

// Encode writes the model as versioned JSON, so trained representations
// can be deployed without retraining (the paper's "train once, use for
// arbitrary downstream applications" story).
func (m *Model) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(modelJSON{
		Version:    modelFormatVersion,
		K:          m.K(),
		N:          m.Dims(),
		P:          m.P,
		TakeRoot:   m.TakeRoot,
		Kernel:     int(m.Kernel),
		Alpha:      m.Alpha,
		Prototypes: m.Prototypes.Data(),
		Loss:       m.Loss,
	})
}

// DecodeModel reads a model previously written by Encode.
func DecodeModel(r io.Reader) (*Model, error) {
	var mj modelJSON
	if err := json.NewDecoder(r).Decode(&mj); err != nil {
		return nil, fmt.Errorf("ifair: decode model: %w", err)
	}
	if mj.Version != modelFormatVersion {
		return nil, fmt.Errorf("ifair: unsupported model format version %d (want %d)", mj.Version, modelFormatVersion)
	}
	if mj.K <= 0 || mj.N <= 0 {
		return nil, fmt.Errorf("ifair: invalid model dimensions K=%d N=%d", mj.K, mj.N)
	}
	if len(mj.Alpha) != mj.N {
		return nil, fmt.Errorf("ifair: alpha length %d does not match N=%d", len(mj.Alpha), mj.N)
	}
	if len(mj.Prototypes) != mj.K*mj.N {
		return nil, fmt.Errorf("ifair: prototype data length %d does not match K×N=%d", len(mj.Prototypes), mj.K*mj.N)
	}
	p := mj.P
	if p == 0 {
		p = 2
	}
	m := &Model{
		Prototypes: mat.NewDenseData(mj.K, mj.N, mj.Prototypes),
		Alpha:      mj.Alpha,
		P:          p,
		TakeRoot:   mj.TakeRoot,
		Kernel:     Kernel(mj.Kernel),
		Loss:       mj.Loss,
	}
	// Validate rejects the remaining inconsistencies a corrupt file can
	// carry: negative or non-finite weights, non-finite prototypes, p < 1
	// and unknown kernel ids.
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// LoadModelFile reads and validates a model file written by Encode. It is
// the single source of truth for loading persisted models — the CLI and
// the serving registry both go through it.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := DecodeModel(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}
