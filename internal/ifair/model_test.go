package ifair

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/mat"
)

func fittedModel(t *testing.T, seed int64) (*Model, *mat.Dense) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	x := randomData(rng, 30, 4)
	model, err := Fit(x, Options{K: 3, Lambda: 1, Mu: 0.1, Seed: seed, MaxIterations: 40})
	if err != nil {
		t.Fatal(err)
	}
	return model, x
}

func TestProbabilitiesSumToOne(t *testing.T) {
	model, x := fittedModel(t, 1)
	for i := 0; i < x.Rows(); i++ {
		u := model.Probabilities(x.Row(i))
		var sum float64
		for _, p := range u {
			if p < 0 || p > 1 {
				t.Fatalf("probability %v out of [0,1]", p)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

// Property: the transformed record lies in the convex hull of the
// prototypes, so each coordinate is bounded by the prototype extremes.
func TestTransformInConvexHull(t *testing.T) {
	model, x := fittedModel(t, 2)
	k, n := model.K(), model.Dims()
	for i := 0; i < x.Rows(); i++ {
		xt := model.TransformRow(x.Row(i))
		for j := 0; j < n; j++ {
			lo, hi := math.Inf(1), math.Inf(-1)
			for kk := 0; kk < k; kk++ {
				v := model.Prototypes.At(kk, j)
				lo = math.Min(lo, v)
				hi = math.Max(hi, v)
			}
			if xt[j] < lo-1e-9 || xt[j] > hi+1e-9 {
				t.Fatalf("coordinate %v outside prototype hull [%v, %v]", xt[j], lo, hi)
			}
		}
	}
}

func TestTransformMatchesTransformRow(t *testing.T) {
	model, x := fittedModel(t, 3)
	xt := model.Transform(x)
	for i := 0; i < x.Rows(); i++ {
		row := model.TransformRow(x.Row(i))
		for j := range row {
			if xt.At(i, j) != row[j] {
				t.Fatal("Transform disagrees with TransformRow")
			}
		}
	}
}

func TestMembershipsShape(t *testing.T) {
	model, x := fittedModel(t, 4)
	u := model.Memberships(x)
	if r, c := u.Dims(); r != x.Rows() || c != model.K() {
		t.Fatalf("Memberships dims = %d×%d, want %d×%d", r, c, x.Rows(), model.K())
	}
}

func TestCheckedVariantsReportDimensionMismatch(t *testing.T) {
	model, x := fittedModel(t, 11)
	bad := make([]float64, model.Dims()+3)
	if _, err := model.ProbabilitiesChecked(bad); err == nil {
		t.Fatal("ProbabilitiesChecked: expected error for wrong width")
	}
	if _, err := model.TransformRowChecked(bad); err == nil {
		t.Fatal("TransformRowChecked: expected error for wrong width")
	}
	if _, err := model.TransformChecked(mat.NewDense(2, model.Dims()-1)); err == nil {
		t.Fatal("TransformChecked: expected error for wrong width")
	}
	if _, err := model.TransformParallelChecked(mat.NewDense(2, model.Dims()+1), 4); err == nil {
		t.Fatal("TransformParallelChecked: expected error for wrong width")
	}
	// The checked variants agree with the panicking ones on valid input.
	got, err := model.TransformRowChecked(x.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	want := model.TransformRow(x.Row(0))
	for j := range want {
		if got[j] != want[j] {
			t.Fatal("TransformRowChecked disagrees with TransformRow")
		}
	}
}

func TestTransformParallelMatchesSerial(t *testing.T) {
	model, x := fittedModel(t, 12)
	want := model.Transform(x)
	for _, workers := range []int{1, 2, 3, 8} {
		got := model.TransformParallel(x, workers)
		if !mat.Equalish(got, want, 0) {
			t.Fatalf("workers=%d: parallel transform differs from serial", workers)
		}
	}
}

func TestValidate(t *testing.T) {
	valid := func() *Model {
		return &Model{
			Prototypes: mat.FromRows([][]float64{{0, 0}, {1, 1}}),
			Alpha:      []float64{1, 1},
			P:          2,
		}
	}
	if err := valid().Validate(); err != nil {
		t.Fatalf("valid model rejected: %v", err)
	}
	cases := map[string]func(*Model){
		"nil prototypes":   func(m *Model) { m.Prototypes = nil },
		"alpha too short":  func(m *Model) { m.Alpha = m.Alpha[:1] },
		"negative alpha":   func(m *Model) { m.Alpha[0] = -1 },
		"nan alpha":        func(m *Model) { m.Alpha[1] = math.NaN() },
		"inf prototype":    func(m *Model) { m.Prototypes.Set(0, 0, math.Inf(1)) },
		"p below one":      func(m *Model) { m.P = 0.5 },
		"nan p":            func(m *Model) { m.P = math.NaN() },
		"unknown kernel":   func(m *Model) { m.Kernel = Kernel(9) },
		"negative kernel":  func(m *Model) { m.Kernel = Kernel(-1) },
		"empty prototypes": func(m *Model) { m.Prototypes = mat.NewDense(0, 0) },
	}
	for name, corrupt := range cases {
		m := valid()
		corrupt(m)
		if err := m.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestTransformWrongWidthPanics(t *testing.T) {
	model, _ := fittedModel(t, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	model.Transform(mat.NewDense(2, model.Dims()+1))
}

func TestProbabilitiesWrongWidthPanics(t *testing.T) {
	model, _ := fittedModel(t, 6)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	model.Probabilities(make([]float64, model.Dims()+2))
}

// Property: a record coincident with one prototype and far from the others
// gets nearly all probability mass on that prototype.
func TestProbabilitiesConcentrateOnNearestPrototype(t *testing.T) {
	protos := mat.FromRows([][]float64{
		{0, 0},
		{10, 10},
	})
	model := &Model{Prototypes: protos, Alpha: []float64{1, 1}, P: 2}
	u := model.Probabilities([]float64{0, 0})
	if u[0] < 0.999 {
		t.Fatalf("u = %v, want mass on prototype 0", u)
	}
}

// Property: with zero α-weight on a coordinate, changing that coordinate
// does not change the representation at all. This is the mechanism behind
// iFair-b's protected-attribute invariance.
func TestZeroWeightCoordinateInvariance(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		protos := randomData(rng, 3, 3)
		model := &Model{Prototypes: protos, Alpha: []float64{1, 1, 0}, P: 2}
		a := []float64{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		b := append([]float64(nil), a...)
		b[2] = rng.NormFloat64() * 100 // change only the zero-weight coordinate
		ta := model.TransformRow(a)
		tb := model.TransformRow(b)
		for j := range ta {
			if math.Abs(ta[j]-tb[j]) > 1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestKernelDistanceGeneralP(t *testing.T) {
	x := []float64{0, 0}
	v := []float64{3, 4}
	w := []float64{1, 1}
	if got := kernelDistance(x, v, w, 2, false); got != 25 {
		t.Fatalf("squared p=2 distance = %v, want 25", got)
	}
	if got := kernelDistance(x, v, w, 2, true); math.Abs(got-5) > 1e-12 {
		t.Fatalf("rooted p=2 distance = %v, want 5", got)
	}
	if got := kernelDistance(x, v, w, 1, true); math.Abs(got-7) > 1e-12 {
		t.Fatalf("p=1 distance = %v, want 7", got)
	}
}
