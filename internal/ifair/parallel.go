package ifair

import "sync"

// runChunks splits the half-open range [0, total) into one contiguous
// chunk per worker and runs fn concurrently. fn receives the worker index
// and its chunk bounds. With workers ≤ 1 it runs inline.
//
// Chunk boundaries depend only on (total, workers), so any reduction that
// combines per-worker partials in worker order is deterministic for a
// fixed worker count.
func runChunks(total, workers int, fn func(worker, lo, hi int)) {
	if workers <= 1 || total <= 1 {
		fn(0, 0, total)
		return
	}
	if workers > total {
		workers = total
	}
	chunk := (total + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > total {
			hi = total
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
}

// numChunks returns how many chunks runChunks will actually use.
func numChunks(total, workers int) int {
	if workers <= 1 || total <= 1 {
		return 1
	}
	if workers > total {
		workers = total
	}
	return workers
}
