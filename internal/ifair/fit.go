package ifair

import (
	"context"
	"errors"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/optimize"
)

// ErrNoData is returned when Fit is called on an empty matrix.
var ErrNoData = errors.New("ifair: no training data")

// Trace observes a training run; see optimize.Trace. It is re-exported
// here so callers configuring Options.Trace need not import
// internal/optimize.
type Trace = optimize.Trace

// Iteration is one per-iteration progress event; see optimize.Iteration.
type Iteration = optimize.Iteration

// Fit learns an iFair representation of x (M×N, already encoded and
// standardised) by minimising Def. 9 with L-BFGS. It runs opts.Restarts
// independent random initialisations and returns the model with the lowest
// final objective, mirroring the paper's best-of-3 protocol.
//
// Fit is a convenience wrapper around FitContext with a background
// context: it cannot be cancelled. Use FitContext to bound training with a
// deadline or run restarts concurrently.
func Fit(x *mat.Dense, opts Options) (*Model, error) {
	return FitContext(context.Background(), x, opts)
}

// FitContext is Fit with cancellation, deadlines, observability and
// parallel restarts. The opts.Restarts random restarts run concurrently on
// a pool of opts.RestartWorkers goroutines (≤ 1 runs them serially), each
// initialised from a seed derived only from (opts.Seed, restart index), so
// the returned model is bit-identical for every worker count. Ties on the
// final loss break to the lowest restart index.
//
// Cancelling ctx stops every in-flight optimizer within one iteration and
// returns ctx.Err(). A restart whose optimizer fails is skipped: the best
// converged restart still wins, and an error is returned only when every
// restart fails (the per-restart errors joined).
//
// opts.Trace receives restart start/end and per-iteration events.
//
// opts.Checkpoint makes the fit crash-safe: each finished restart is
// persisted immediately and a later call with the same problem resumes —
// skipping persisted restarts and re-running interrupted ones from their
// derived seeds — to a model bit-identical to an uninterrupted run's.
func FitContext(ctx context.Context, x *mat.Dense, opts Options) (*Model, error) {
	m, n := x.Dims()
	if m == 0 || n == 0 {
		return nil, ErrNoData
	}
	if err := opts.fill(m, n); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// The fairness pair set is part of the problem, not of a restart:
	// build it once from the base seed and share it read-only.
	base := newObjective(x, opts, rand.New(rand.NewSource(opts.Seed)))

	models := make([]*Model, opts.Restarts)
	iters := make([]int, opts.Restarts)
	trace := opts.Trace
	ckpt := opts.Checkpoint
	var ledger optimize.RestartLedger
	if ckpt != nil {
		if _, err := ckpt.Begin(opts.Seed, opts.Restarts, checkpointFingerprint(x, &opts)); err != nil {
			return nil, err
		}
		ledger = &ckptLedger{mgr: ckpt, n: n, opts: &opts, models: models, iters: iters}
	}
	best, err := optimize.RestartsLedger(ctx, opts.Restarts, opts.RestartWorkers, ledger,
		func(ctx context.Context, r int) (float64, error) {
			if trace != nil {
				trace.RestartStart(r)
			}
			rng := rand.New(rand.NewSource(optimize.RestartSeed(opts.Seed, r)))
			theta := initialTheta(x, opts, rng)
			if r == 0 && opts.WarmStart != nil {
				// Restart 0 continues from the warm-start model; the random
				// draw above still happens so the other restarts' streams are
				// untouched by the substitution.
				theta = warmStartTheta(opts.WarmStart)
			}
			// Drawn whether or not SGD runs, so the initialisation stream
			// is identical across optimiser choices.
			shuffleSeed := rng.Int63()
			obj := base
			if opts.RestartWorkers > 1 {
				obj = base.clone() // private scratch per concurrent restart
			}
			settings := optimize.Settings{
				MaxIterations: opts.MaxIterations,
				GradTol:       1e-5,
				Callback:      optimize.ContextCallback(ctx, trace, r),
			}
			if opts.BatchSize > 0 {
				settings.MaxIterations = opts.Epochs
			}
			if ckpt != nil {
				settings.Snapshot = func(it optimize.Iteration, xcur []float64) {
					ckpt.Observe(r, it.Iter, it.F, xcur)
				}
			}
			var res optimize.Result
			var err error
			switch {
			case opts.BatchSize > 0:
				res, err = optimize.SGD(obj, theta, optimize.SGDSettings{
					Settings:  settings,
					BatchSize: opts.BatchSize,
					LearnRate: opts.LearnRate,
					Seed:      shuffleSeed,
				})
			case opts.UseGradientDescent:
				res, err = optimize.GradientDescent(obj, theta, settings)
			default:
				res, err = optimize.LBFGS(obj, theta, settings)
			}
			if trace != nil {
				trace.RestartEnd(r, res, err)
			}
			if err != nil {
				return math.NaN(), err
			}
			if res.Status == optimize.Stopped {
				// The optimizer was cut short by cancellation; its point is
				// not a finished restart.
				return math.NaN(), context.Cause(ctx)
			}
			model := modelFromTheta(res.X, n, opts)
			model.Loss = res.F
			models[r] = model
			iters[r] = res.Iterations
			return res.F, nil
		})
	if err != nil {
		return nil, err
	}
	return models[best], nil
}

// initialTheta draws a packed parameter vector: first the α
// reparameterisation a (α = a²), then the K prototype rows.
func initialTheta(x *mat.Dense, opts Options, rng *rand.Rand) []float64 {
	m, n := x.Dims()
	theta := make([]float64, n+opts.K*n)

	// a-vector: α_n = a_n², so draw a_n = sqrt(α_n) for α_n ~ U(0,1).
	isProt := make([]bool, n)
	for _, p := range opts.Protected {
		isProt[p] = true
	}
	for j := 0; j < n; j++ {
		alpha := rng.Float64()
		if opts.Init == InitMaskedProtected && isProt[j] {
			alpha = opts.NearZero
		}
		theta[j] = math.Sqrt(alpha)
	}

	// prototypes
	for k := 0; k < opts.K; k++ {
		row := theta[n+k*n : n+(k+1)*n]
		switch opts.ProtoInit {
		case InitUniform:
			for j := range row {
				row[j] = rng.Float64()
			}
		default: // InitDataPoints
			src := x.Row(rng.Intn(m))
			for j := range row {
				row[j] = src[j] + 0.1*rng.NormFloat64()
			}
		}
	}
	return theta
}

// warmStartTheta packs a fitted model back into the optimizer's
// parameter vector: a_j = sqrt(α_j) inverts the α = a² reparameterisation
// (α is non-negative by construction, so the root is always real), and
// the prototype rows are copied verbatim. Evaluating the objective at
// this point reproduces the warm-start model's behaviour exactly, so a
// monotone optimizer can only improve on it.
func warmStartTheta(ws *Model) []float64 {
	n := ws.Dims()
	theta := make([]float64, n+ws.K()*n)
	for j, a := range ws.Alpha {
		theta[j] = math.Sqrt(a)
	}
	copy(theta[n:], ws.Prototypes.Data())
	return theta
}

func modelFromTheta(theta []float64, n int, opts Options) *Model {
	alpha := make([]float64, n)
	for j := 0; j < n; j++ {
		alpha[j] = theta[j] * theta[j]
	}
	protos := mat.NewDense(opts.K, n)
	copy(protos.Data(), theta[n:])
	return &Model{
		Prototypes: protos,
		Alpha:      alpha,
		P:          opts.P,
		TakeRoot:   opts.TakeRoot,
		Kernel:     opts.Kernel,
	}
}
