package ifair

import (
	"errors"
	"math"
	"math/rand"

	"repro/internal/mat"
	"repro/internal/optimize"
)

// ErrNoData is returned when Fit is called on an empty matrix.
var ErrNoData = errors.New("ifair: no training data")

// Fit learns an iFair representation of x (M×N, already encoded and
// standardised) by minimising Def. 9 with L-BFGS. It runs opts.Restarts
// independent random initialisations and returns the model with the lowest
// final objective, mirroring the paper's best-of-3 protocol.
func Fit(x *mat.Dense, opts Options) (*Model, error) {
	m, n := x.Dims()
	if m == 0 || n == 0 {
		return nil, ErrNoData
	}
	if err := opts.fill(n); err != nil {
		return nil, err
	}

	rng := rand.New(rand.NewSource(opts.Seed))
	obj := newObjective(x, opts, rng)

	var best *Model
	for r := 0; r < opts.Restarts; r++ {
		theta := initialTheta(x, opts, rng)
		settings := optimize.Settings{MaxIterations: opts.MaxIterations, GradTol: 1e-5}
		var res optimize.Result
		var err error
		if opts.UseGradientDescent {
			res, err = optimize.GradientDescent(obj, theta, settings)
		} else {
			res, err = optimize.LBFGS(obj, theta, settings)
		}
		if err != nil {
			return nil, err
		}
		model := modelFromTheta(res.X, n, opts)
		model.Loss = res.F
		if best == nil || model.Loss < best.Loss {
			best = model
		}
	}
	return best, nil
}

// initialTheta draws a packed parameter vector: first the α
// reparameterisation a (α = a²), then the K prototype rows.
func initialTheta(x *mat.Dense, opts Options, rng *rand.Rand) []float64 {
	m, n := x.Dims()
	theta := make([]float64, n+opts.K*n)

	// a-vector: α_n = a_n², so draw a_n = sqrt(α_n) for α_n ~ U(0,1).
	isProt := make([]bool, n)
	for _, p := range opts.Protected {
		isProt[p] = true
	}
	for j := 0; j < n; j++ {
		alpha := rng.Float64()
		if opts.Init == InitMaskedProtected && isProt[j] {
			alpha = opts.NearZero
		}
		theta[j] = math.Sqrt(alpha)
	}

	// prototypes
	for k := 0; k < opts.K; k++ {
		row := theta[n+k*n : n+(k+1)*n]
		switch opts.ProtoInit {
		case InitUniform:
			for j := range row {
				row[j] = rng.Float64()
			}
		default: // InitDataPoints
			src := x.Row(rng.Intn(m))
			for j := range row {
				row[j] = src[j] + 0.1*rng.NormFloat64()
			}
		}
	}
	return theta
}

func modelFromTheta(theta []float64, n int, opts Options) *Model {
	alpha := make([]float64, n)
	for j := 0; j < n; j++ {
		alpha[j] = theta[j] * theta[j]
	}
	protos := mat.NewDense(opts.K, n)
	copy(protos.Data(), theta[n:])
	return &Model{
		Prototypes: protos,
		Alpha:      alpha,
		P:          opts.P,
		TakeRoot:   opts.TakeRoot,
		Kernel:     opts.Kernel,
	}
}
