package main

import (
	"bufio"
	"bytes"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"testing"
	"time"
)

// writeDirtyCSV emits a numeric CSV with a seeded sprinkle of defective
// rows — the input for the ingest chaos soak.
func writeDirtyCSV(t *testing.T, path string, rows int) {
	t.Helper()
	rng := rand.New(rand.NewSource(13))
	var sb strings.Builder
	sb.WriteString("a,b,c,d\n")
	for i := 0; i < rows; i++ {
		if i%41 == 40 {
			switch i % 3 {
			case 0:
				sb.WriteString("1,2,3\n") // short
			case 1:
				sb.WriteString("garbage,2,3,4\n")
			default:
				sb.WriteString("NaN,2,3,4\n")
			}
			continue
		}
		fmt.Fprintf(&sb, "%.9f,%.9f,%.9f,%.9f\n",
			rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64())
	}
	if err := os.WriteFile(path, []byte(sb.String()), 0o644); err != nil {
		t.Fatal(err)
	}
}

// readStore loads every file of a shard store keyed by base name.
func readStore(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read store %s: %v", dir, err)
	}
	store := map[string][]byte{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		store[e.Name()] = b
	}
	return store
}

func diffStores(t *testing.T, want, got map[string][]byte) {
	t.Helper()
	var names []string
	for n := range want {
		names = append(names, n)
	}
	for n := range got {
		if _, ok := want[n]; !ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	for _, n := range names {
		w, g := want[n], got[n]
		switch {
		case w == nil:
			t.Errorf("store has unexpected file %s", n)
		case g == nil:
			t.Errorf("store is missing file %s", n)
		case !bytes.Equal(w, g):
			t.Errorf("store file %s differs (%d vs %d bytes)", n, len(w), len(g))
		}
	}
}

// TestSIGTERMIngestResume is the end-to-end ingest chaos soak: a real
// ifair process is SIGTERMed mid-ingest (after a chosen number of shard
// seals), rerun with -resume-ingest, and the final shard store, trained
// model and drift profile must be byte-identical to an uninterrupted
// run's. IFAIR_TEST_INGEST=1 widens the sweep to several kill points and
// a double-kill run.
func TestSIGTERMIngestResume(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "dirty.csv")
	writeDirtyCSV(t, input, 4000)

	args := func(store, model, profile string) []string {
		return []string{
			"-input", input, "-protected", "3",
			"-ingest", store, "-shard-rows", "64", "-max-bad-rows", "-1",
			"-fairness", "neighbor", "-k", "3", "-restarts", "1",
			"-maxiter", "25", "-seed", "9",
			"-save", model, "-save-profile", profile,
			"-out", filepath.Join(dir, "out.csv"),
		}
	}

	// Uninterrupted reference run.
	refStore := filepath.Join(dir, "store-ref")
	refModel := filepath.Join(dir, "ref.json")
	refProfile := filepath.Join(dir, "ref.profile")
	cmd, stderr := runCLI(t, args(refStore, refModel, refProfile)...)
	if err := cmd.Run(); err != nil {
		t.Fatalf("reference run: %v\nstderr:\n%s", err, stderr)
	}
	ref := readStore(t, refStore)
	refModelBytes, err := os.ReadFile(refModel)
	if err != nil {
		t.Fatal(err)
	}
	refProfileBytes, err := os.ReadFile(refProfile)
	if err != nil {
		t.Fatal(err)
	}

	killPoints := []int{2}
	if os.Getenv("IFAIR_TEST_INGEST") == "1" {
		killPoints = []int{1, 3, 10, 30}
	}

	for _, seals := range killPoints {
		t.Run(fmt.Sprintf("kill_after_%d_seals", seals), func(t *testing.T) {
			store := filepath.Join(dir, fmt.Sprintf("store-%d", seals))
			model := filepath.Join(dir, fmt.Sprintf("model-%d.json", seals))
			profile := filepath.Join(dir, fmt.Sprintf("profile-%d.profile", seals))

			killMidIngest(t, args(store, model, profile), seals)
			if os.Getenv("IFAIR_TEST_INGEST") == "1" && seals > 1 {
				// Double kill: interrupt the resume too, at an earlier
				// point of what remains.
				killMidIngest(t, append(args(store, model, profile), "-resume-ingest"), 1)
			}

			resumeArgs := append(args(store, model, profile), "-resume-ingest")
			cmd, stderr := runCLI(t, resumeArgs...)
			if err := cmd.Run(); err != nil {
				t.Fatalf("resumed run: %v\nstderr:\n%s", err, stderr)
			}
			diffStores(t, ref, readStore(t, store))
			gotModel, err := os.ReadFile(model)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refModelBytes, gotModel) {
				t.Fatal("resumed model differs from uninterrupted reference")
			}
			gotProfile, err := os.ReadFile(profile)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(refProfileBytes, gotProfile) {
				t.Fatal("resumed drift profile differs from uninterrupted reference")
			}
		})
	}
}

// killMidIngest starts the CLI and SIGTERMs it after `seals` "sealed"
// lines appear on stderr. If the run finishes before the signal lands
// that is fine — the resume then verifies a complete store instead.
func killMidIngest(t *testing.T, cliArgs []string, seals int) {
	t.Helper()
	cmd := exec.Command(os.Args[0], cliArgs...)
	cmd.Env = append(os.Environ(), "IFAIR_CLI_MAIN=1")
	progress, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sawSeals := make(chan struct{})
	go func() {
		sc := bufio.NewScanner(progress)
		n := 0
		for sc.Scan() {
			if strings.Contains(sc.Text(), "sealed") {
				if n++; n == seals {
					close(sawSeals)
				}
			}
		}
	}()
	select {
	case <-sawSeals:
		if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
	case <-time.After(60 * time.Second):
		cmd.Process.Kill()
		t.Fatalf("never saw %d seal notices before the timeout", seals)
	}
	if err := cmd.Wait(); err == nil {
		t.Logf("run finished before SIGTERM landed after %d seals", seals)
	}
}
