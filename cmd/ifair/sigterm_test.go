package main

import (
	"bytes"
	"encoding/csv"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"
)

// TestMain lets the test binary impersonate the real CLI: when re-executed
// with IFAIR_CLI_MAIN=1 it runs main() instead of the tests, so the
// SIGTERM test below can kill a genuine ifair process — real signal
// handler, real checkpoint flush, real exit — without needing a separate
// build step.
func TestMain(m *testing.M) {
	if os.Getenv("IFAIR_CLI_MAIN") == "1" {
		main()
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// writeTrainingCSV emits a small numeric CSV with a header row.
func writeTrainingCSV(t *testing.T, path string) {
	t.Helper()
	rng := rand.New(rand.NewSource(5))
	var buf bytes.Buffer
	w := csv.NewWriter(&buf)
	if err := w.Write([]string{"a", "b", "c", "d"}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		row := make([]string, 4)
		for j := range row {
			row[j] = strconv.FormatFloat(rng.NormFloat64(), 'g', 17, 64)
		}
		if err := w.Write(row); err != nil {
			t.Fatal(err)
		}
	}
	w.Flush()
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
}

// runCLI re-executes the test binary as the ifair CLI with the given
// arguments and returns the finished command and its stderr.
func runCLI(t *testing.T, args ...string) (*exec.Cmd, *bytes.Buffer) {
	t.Helper()
	cmd := exec.Command(os.Args[0], args...)
	cmd.Env = append(os.Environ(), "IFAIR_CLI_MAIN=1")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	return cmd, &stderr
}

// TestSIGTERMCheckpointResume is the end-to-end crash-safety test with a
// real process and a real signal: start training with -checkpoint, SIGTERM
// it mid-run, rerun the identical command, and the resumed run's saved
// model must be byte-identical to the model of a run that was never
// interrupted.
func TestSIGTERMCheckpointResume(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "train.csv")
	writeTrainingCSV(t, input)

	baseArgs := func(modelPath, ckptDir string) []string {
		return []string{
			"-input", input, "-protected", "3",
			"-k", "3", "-restarts", "3", "-maxiter", "60", "-seed", "9",
			"-checkpoint-every", "1",
			"-save", modelPath, "-checkpoint", ckptDir,
			"-out", filepath.Join(dir, "out.csv"),
		}
	}

	// Uninterrupted reference run (its own checkpoint dir).
	refModel := filepath.Join(dir, "ref.json")
	cmd, stderr := runCLI(t, baseArgs(refModel, filepath.Join(dir, "ckpt-ref"))...)
	if err := cmd.Run(); err != nil {
		t.Fatalf("reference run: %v\nstderr:\n%s", err, stderr)
	}
	ref, err := os.ReadFile(refModel)
	if err != nil {
		t.Fatalf("reference model: %v", err)
	}

	// Interrupted run: -progress gives us a signal-worthy moment — the
	// first iteration line means training is genuinely underway.
	ckptDir := filepath.Join(dir, "ckpt")
	killedModel := filepath.Join(dir, "killed.json")
	args := append(baseArgs(killedModel, ckptDir), "-progress")
	cmd, _ = runCLI(t, args...)
	cmd.Stderr = nil // read stderr through a pipe instead
	progress, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	sawIteration := make(chan struct{})
	go func() {
		buf := make([]byte, 4096)
		var seen bool
		for {
			n, err := progress.Read(buf)
			if n > 0 && !seen && strings.Contains(string(buf[:n]), "iter") {
				seen = true
				close(sawIteration)
			}
			if err != nil {
				return
			}
		}
	}()
	select {
	case <-sawIteration:
	case <-time.After(30 * time.Second):
		cmd.Process.Kill()
		t.Fatal("never saw a training iteration before the timeout")
	}
	if err := cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	err = cmd.Wait()
	if err == nil {
		// The run finished before the signal landed; the checkpoint dir
		// then holds a complete state and the resume below still must
		// reproduce the reference model.
		t.Log("run completed before SIGTERM landed; checking resume of a complete checkpoint")
	} else if cmd.ProcessState.ExitCode() != 1 {
		t.Fatalf("killed run: %v (exit %d)", err, cmd.ProcessState.ExitCode())
	}
	if _, err := os.Stat(killedModel); err == nil && cmd.ProcessState.ExitCode() == 1 {
		t.Fatal("killed run saved a model despite failing")
	}
	names, _ := filepath.Glob(filepath.Join(ckptDir, "snap-*.ckpt"))
	if len(names) == 0 {
		t.Fatal("killed run left no checkpoint snapshots")
	}

	// Resume with the identical command (plus -resume: the checkpoint must
	// match, or the run should fail loudly).
	resumedModel := filepath.Join(dir, "resumed.json")
	args = append(baseArgs(resumedModel, ckptDir), "-resume")
	cmd, stderr = runCLI(t, args...)
	if err := cmd.Run(); err != nil {
		t.Fatalf("resumed run: %v\nstderr:\n%s", err, stderr)
	}
	resumed, err := os.ReadFile(resumedModel)
	if err != nil {
		t.Fatalf("resumed model: %v", err)
	}
	if !bytes.Equal(ref, resumed) {
		t.Fatalf("resumed model differs from uninterrupted reference\nref:     %d bytes\nresumed: %d bytes", len(ref), len(resumed))
	}
}

// TestResumeRejectsForeignCheckpoint pins the -resume contract: resuming
// against a checkpoint recorded for different options must fail, not
// silently retrain.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	input := filepath.Join(dir, "train.csv")
	writeTrainingCSV(t, input)
	ckptDir := filepath.Join(dir, "ckpt")

	cmd, stderr := runCLI(t,
		"-input", input, "-protected", "3", "-k", "3", "-restarts", "2",
		"-maxiter", "30", "-seed", "9", "-checkpoint", ckptDir,
		"-out", filepath.Join(dir, "out.csv"))
	if err := cmd.Run(); err != nil {
		t.Fatalf("first run: %v\nstderr:\n%s", err, stderr)
	}

	// Different seed, same checkpoint dir, -resume: must fail.
	cmd, stderr = runCLI(t,
		"-input", input, "-protected", "3", "-k", "3", "-restarts", "2",
		"-maxiter", "30", "-seed", "10", "-checkpoint", ckptDir, "-resume",
		"-out", filepath.Join(dir, "out.csv"))
	if err := cmd.Run(); err == nil {
		t.Fatalf("resume with mismatched seed succeeded\nstderr:\n%s", stderr)
	}
	if !strings.Contains(stderr.String(), "snapshot") {
		t.Fatalf("mismatch error does not mention the snapshot:\n%s", stderr)
	}
}
