// Command ifair trains an individually fair representation and writes the
// transformed data as CSV. It accepts either a numeric CSV file or the
// name of one of the built-in dataset simulators.
//
// Usage:
//
//	ifair -dataset credit -k 10 -lambda 1 -mu 1 -out fair.csv
//	ifair -input data.csv -protected 3,4 -k 20 -out fair.csv
//	ifair -dataset credit -checkpoint ckpt/ -out fair.csv   # crash-safe
//	ifair -input big.csv -fairness neighbor -batch 1024 -epochs 20 -out fair.csv
//	ifair -dataset credit -save models/credit@v1.json -save-profile models/credit.profile
//	ifair -dataset credit -warm-start models/credit@v1.json -save models/credit@v2.json
//	ifair -input dirty.csv -ingest store/ -max-bad-rows 100 -out fair.csv
//
// Large datasets train with -fairness neighbor (fairness pairs drawn
// from each record's nearest neighbours on the non-protected columns)
// and -batch (mini-batch SGD with dataset-size-independent memory); the
// full-pair and full-batch defaults remain exact for small data.
//
// CSV input must have a header row and numeric cells; -protected lists
// zero-based column indices of protected attributes.
//
// With -ingest, the input CSV is streamed through the robust ingestion
// pipeline (internal/ingest) into a durable shard store: rows are
// validated (arity, parseability, finiteness), defective rows are
// quarantined with row-numbered reasons under the -max-bad-rows budget,
// and training reads the CRC-verified shards instead of the raw file. A
// killed ingest continues with -resume-ingest and yields a byte-identical
// store; -save-profile builds its drift profile during the same single
// ingest pass.
//
// With -checkpoint, training state is snapshotted atomically to the given
// directory; if the process is killed (SIGINT/SIGTERM) or crashes, rerunning
// the same command resumes where it left off and produces a model
// bit-identical to an uninterrupted run. -resume additionally errors when
// the directory's snapshot belongs to a different dataset, options or seed
// instead of silently starting fresh.
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/checkpoint"
	"repro/internal/dataset"
	"repro/internal/drift"
	"repro/internal/ifair"
	"repro/internal/ingest"
	"repro/internal/mat"
	"repro/internal/optimize"
	"repro/internal/stats"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifair:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		dsName    = flag.String("dataset", "", "built-in dataset: compas, census, credit, xing, airbnb")
		input     = flag.String("input", "", "numeric CSV file with a header row")
		protected = flag.String("protected", "", "comma-separated zero-based protected column indices (CSV input)")
		out       = flag.String("out", "", "output CSV path (default stdout)")
		k         = flag.Int("k", 10, "number of prototypes")
		lambda    = flag.Float64("lambda", 1, "reconstruction loss weight λ")
		mu        = flag.Float64("mu", 1, "individual fairness loss weight µ")
		variantB  = flag.Bool("maskedinit", true, "use iFair-b initialisation (near-zero protected weights)")
		fairness  = flag.String("fairness", "sampled", "fairness pairing: pairwise, sampled, neighbor")
		samples   = flag.Int("pair-samples", 16, "fairness partners per record (sampled/neighbor modes)")
		neighborK = flag.Int("neighbor-k", ifair.DefaultNeighborK, "neighbour pool per record (neighbor mode)")
		batch     = flag.Int("batch", 0, "mini-batch size; > 0 trains with SGD instead of L-BFGS")
		epochs    = flag.Int("epochs", 30, "SGD epochs per restart (with -batch)")
		learnRate = flag.Float64("lr", 0.01, "SGD per-item learning rate (with -batch)")
		restarts  = flag.Int("restarts", 3, "random restarts (best final loss wins)")
		workers   = flag.Int("restart-workers", runtime.NumCPU(), "restarts trained concurrently (1 = serial; same model either way)")
		progress  = flag.Bool("progress", false, "print per-restart training progress to stderr")
		maxIter   = flag.Int("maxiter", 150, "maximum L-BFGS iterations")
		seed      = flag.Int64("seed", 42, "random seed")
		saveModel = flag.String("save", "", "write the trained model as JSON to this path")
		loadModel = flag.String("load", "", "skip training: load a model JSON and transform the input")
		warmStart = flag.String("warm-start", "", "seed restart 0 from this model JSON (refit: continue from the served representation)")
		saveProf  = flag.String("save-profile", "", "write a drift profile (baseline stats + reference sample of the training data) to this path")
		profRows  = flag.Int("profile-rows", drift.DefaultReferenceRows, "reference rows sampled into the drift profile (with -save-profile)")
		explain   = flag.Bool("explain", false, "print the learned attribute weights (largest first) to stderr")
		ckptDir   = flag.String("checkpoint", "", "directory for crash-safe training snapshots (enables checkpointing)")
		ckptEvery = flag.Int("checkpoint-every", 50, "snapshot at least every N optimizer iterations")
		resume    = flag.Bool("resume", false, "require the checkpoint to match this run (error on mismatch instead of starting fresh)")
		ingestDir = flag.String("ingest", "", "shard-store directory: stream -input through the robust ingest pipeline and train from the store")
		shardRows = flag.Int("shard-rows", ingest.DefaultShardRows, "rows per shard (with -ingest)")
		maxBad    = flag.Int("max-bad-rows", 0, "quarantine budget (with -ingest): fail once more than this many rows are defective; -1 = unlimited")
		resumeIng = flag.Bool("resume-ingest", false, "continue an interrupted ingest in the -ingest directory from its last durable shard")
	)
	flag.Parse()

	if *ingestDir != "" {
		switch {
		case *input == "":
			return fmt.Errorf("-ingest streams a CSV file; it requires -input")
		case *dsName != "":
			return fmt.Errorf("-ingest cannot be combined with -dataset")
		case *loadModel != "":
			return fmt.Errorf("-ingest trains from the shard store; it cannot be combined with -load")
		}
	} else if *resumeIng {
		return fmt.Errorf("-resume-ingest requires -ingest")
	}

	var (
		x        *mat.Dense
		protCols []int
		header   []string
		err      error
	)
	if *ingestDir == "" {
		x, protCols, header, err = loadData(*dsName, *input, *protected, *seed)
		if err != nil {
			return err
		}
	}

	if *loadModel != "" && *warmStart != "" {
		return fmt.Errorf("-warm-start seeds training; it cannot be combined with -load (which skips training)")
	}

	var model *ifair.Model
	var ingProfile *drift.Profile
	if *loadModel != "" {
		// Same loading/validation path as the serving registry
		// (internal/server): one source of truth for reading model files.
		model, err = ifair.LoadModelFile(*loadModel)
		if err != nil {
			return err
		}
		if model.Dims() != x.Cols() {
			return fmt.Errorf("model expects %d attributes, input has %d", model.Dims(), x.Cols())
		}
		fmt.Fprintf(os.Stderr, "loaded iFair model: K=%d, N=%d\n", model.K(), model.Dims())
	} else {
		mode, err := fairnessMode(*fairness)
		if err != nil {
			return err
		}
		opts := ifair.Options{
			K:              *k,
			Lambda:         *lambda,
			Mu:             *mu,
			Protected:      protCols,
			Fairness:       mode,
			PairSamples:    *samples,
			NeighborK:      *neighborK,
			BatchSize:      *batch,
			Epochs:         *epochs,
			LearnRate:      *learnRate,
			Restarts:       *restarts,
			RestartWorkers: *workers,
			MaxIterations:  *maxIter,
			Seed:           *seed,
		}
		if *variantB {
			opts.Init = ifair.InitMaskedProtected
		}
		if *warmStart != "" {
			donor, err := ifair.LoadModelFile(*warmStart)
			if err != nil {
				return fmt.Errorf("warm start: %w", err)
			}
			opts.WarmStart = donor
			fmt.Fprintf(os.Stderr, "warm-starting restart 0 from %s (K=%d, N=%d, loss %.6g)\n",
				*warmStart, donor.K(), donor.Dims(), donor.Loss)
		}
		if *progress {
			opts.Trace = &progressTrace{w: os.Stderr}
		}
		var mgr *checkpoint.Manager
		if *ckptDir != "" {
			mgr, err = checkpoint.Open(checkpoint.Config{
				Dir:             *ckptDir,
				EveryIterations: *ckptEvery,
				Strict:          *resume,
				Logf: func(format string, args ...any) {
					fmt.Fprintf(os.Stderr, "checkpoint: "+format+"\n", args...)
				},
			})
			if err != nil {
				return err
			}
			opts.Checkpoint = mgr
		}
		// SIGINT/SIGTERM cancel the fit (and a -ingest scan); the engine
		// stops every in-flight restart within one iteration.
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		if *ingestDir != "" {
			model, x, header, ingProfile, err = ingestAndFit(ctx, *input, *protected, ingestOpts{
				dir:       *ingestDir,
				shardRows: *shardRows,
				maxBad:    *maxBad,
				resume:    *resumeIng,
			}, opts, *saveProf != "", *profRows, *seed)
		} else {
			model, err = ifair.FitContext(ctx, x, opts)
		}
		if err != nil {
			if mgr != nil && ctx.Err() != nil {
				// Killed mid-training: flush a final snapshot so the next
				// invocation resumes from the very last iterate observed.
				if ferr := mgr.Flush(); ferr != nil {
					fmt.Fprintf(os.Stderr, "checkpoint: final flush failed: %v\n", ferr)
				} else {
					fmt.Fprintf(os.Stderr, "checkpoint: interrupted; state saved to %s — rerun with the same flags to resume\n", mgr.Dir())
				}
			}
			return err
		}
		fmt.Fprintf(os.Stderr, "trained iFair model: K=%d, N=%d, final loss %.6g\n",
			model.K(), model.Dims(), model.Loss)
	}
	if *saveModel != "" {
		f, err := os.Create(*saveModel)
		if err != nil {
			return err
		}
		if err := model.Encode(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "saved model to %s\n", *saveModel)
	}
	if *saveProf != "" {
		// The serving tier's drift monitor and live-yNN estimator compare
		// traffic against exactly this training distribution; place the
		// file at server.ProfilePath(modelsDir, name) to arm the rollout
		// guard for the model.
		p := ingProfile // -ingest builds it during the ingest pass itself
		if p == nil {
			p = drift.NewProfile(x, 0, *profRows, *seed)
		}
		if err := drift.SaveProfile(*saveProf, p); err != nil {
			return fmt.Errorf("save profile: %w", err)
		}
		fmt.Fprintf(os.Stderr, "saved drift profile to %s (%d reference rows)\n",
			*saveProf, len(p.Reference))
	}
	if *explain {
		fmt.Fprintln(os.Stderr, "learned attribute weights (α, largest first):")
		for _, w := range model.AttributeWeights(header) {
			fmt.Fprintf(os.Stderr, "  %-30s %.6f\n", w.Name, w.Weight)
		}
	}

	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	return writeCSV(w, header, model.Transform(x))
}

// progressTrace prints restart and iteration events as human-readable
// stderr lines. Restarts run concurrently, so writes are mutex-guarded.
type progressTrace struct {
	mu sync.Mutex
	w  io.Writer
}

func (p *progressTrace) RestartStart(r int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "restart %d: started\n", r)
}

func (p *progressTrace) Iteration(r int, it optimize.Iteration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	fmt.Fprintf(p.w, "restart %d: iter %3d  loss %.6g  |grad| %.3g  step %.3g\n",
		r, it.Iter, it.F, it.GradNorm, it.Step)
}

func (p *progressTrace) RestartEnd(r int, res optimize.Result, err error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if err != nil {
		fmt.Fprintf(p.w, "restart %d: failed: %v\n", r, err)
		return
	}
	fmt.Fprintf(p.w, "restart %d: %s after %d iterations, final loss %.6g\n",
		r, res.Status, res.Iterations, res.F)
}

// fairnessMode parses the -fairness flag.
func fairnessMode(name string) (ifair.FairnessMode, error) {
	switch name {
	case "pairwise":
		return ifair.PairwiseFairness, nil
	case "sampled":
		return ifair.SampledFairness, nil
	case "neighbor":
		return ifair.NeighborFairness, nil
	default:
		return 0, fmt.Errorf("unknown -fairness %q (choose pairwise, sampled, neighbor)", name)
	}
}

// loadData resolves the input source: a simulator name or a CSV file.
func loadData(dsName, input, protected string, seed int64) (*mat.Dense, []int, []string, error) {
	switch {
	case dsName != "" && input != "":
		return nil, nil, nil, fmt.Errorf("use either -dataset or -input, not both")
	case dsName != "":
		ds, err := builtinDataset(dsName, seed)
		if err != nil {
			return nil, nil, nil, err
		}
		return ds.X, ds.ProtectedCols, ds.FeatureNames, nil
	case input != "":
		return loadCSV(input, protected)
	default:
		return nil, nil, nil, fmt.Errorf("specify -dataset <name> or -input <file.csv>")
	}
}

func builtinDataset(name string, seed int64) (*dataset.Dataset, error) {
	switch name {
	case "compas":
		return dataset.Compas(dataset.ClassificationConfig{Seed: seed}), nil
	case "census":
		return dataset.Census(dataset.ClassificationConfig{Seed: seed}), nil
	case "credit":
		return dataset.Credit(dataset.ClassificationConfig{Seed: seed}), nil
	case "xing":
		return dataset.Xing(dataset.UniformXingWeights, dataset.RankingConfig{Seed: seed}), nil
	case "airbnb":
		return dataset.Airbnb(dataset.RankingConfig{Seed: seed}), nil
	default:
		return nil, fmt.Errorf("unknown dataset %q (choose compas, census, credit, xing, airbnb)", name)
	}
}

// ingestOpts carries the -ingest flag group.
type ingestOpts struct {
	dir       string
	shardRows int
	maxBad    int
	resume    bool
}

// ingestAndFit streams the CSV at path through internal/ingest into a
// durable shard store and trains from it: every row is validated,
// defective rows are quarantined under the error budget, and the fit
// reads CRC-verified shards with streaming (Welford) standardisation.
// When wantProfile, the drift profile is accumulated by a RowObserver
// during the same ingest pass. Returns the model, the standardised
// training matrix, the encoded feature names and the profile (nil unless
// requested).
func ingestAndFit(ctx context.Context, path, protected string, ing ingestOpts, opts ifair.Options, wantProfile bool, profRows int, seed int64) (*ifair.Model, *mat.Dense, []string, *drift.Profile, error) {
	protIdx, err := parseProtectedIndices(protected)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	defer f.Close()

	var builder *drift.ProfileBuilder
	cfg := ingest.Config{
		Dir:        ing.dir,
		Schema:     ingest.Schema{ProtectedIndex: protIdx},
		ShardRows:  ing.shardRows,
		MaxBadRows: ing.maxBad,
		Resume:     ing.resume,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	if wantProfile {
		builder = drift.NewProfileBuilder(0, profRows, seed)
		cfg.Observer = builder
	}
	res, err := ingest.Run(ctx, f, cfg)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "ingest: interrupted; durable shards are kept in %s — rerun with -resume-ingest to continue\n", ing.dir)
		}
		return nil, nil, nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "ingest: %d good row(s) in %d shard(s), %d quarantined (see %s)\n",
		res.GoodRows, res.Shards, res.BadRows, filepath.Join(ing.dir, "quarantine.log"))

	st, err := ingest.OpenStream(ing.dir, nil)
	if err != nil {
		return nil, nil, nil, nil, err
	}
	opts.Protected = st.ProtectedCols()
	model, x, err := ifair.FitStreamContext(ctx, st, opts)
	if err != nil {
		return nil, nil, nil, nil, err
	}

	var prof *drift.Profile
	if builder != nil {
		means, stds := st.MeanStd()
		if prof, err = builder.Build(means, stds); err != nil {
			return nil, nil, nil, nil, err
		}
	}
	return model, x, st.FeatureNames(), prof, nil
}

// parseProtectedIndices parses the -protected flag's comma-separated
// zero-based column indices.
func parseProtectedIndices(protected string) ([]int, error) {
	if protected == "" {
		return nil, nil
	}
	var idx []int
	for _, part := range strings.Split(protected, ",") {
		i, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("invalid protected index %q: %w", part, err)
		}
		idx = append(idx, i)
	}
	return idx, nil
}

// loadCSV reads a numeric CSV with a header row and standardises columns to
// unit variance, matching the preprocessing of Sec. V-B.
func loadCSV(path, protected string) (*mat.Dense, []int, []string, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, nil, err
	}
	defer f.Close()

	r := csv.NewReader(f)
	r.FieldsPerRecord = -1 // arity is checked per row, with row numbers
	rows, err := r.ReadAll()
	if err != nil {
		return nil, nil, nil, err
	}
	if len(rows) < 2 {
		return nil, nil, nil, fmt.Errorf("%s: need a header row and at least one data row", path)
	}
	header := rows[0]
	data := make([][]float64, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != len(header) {
			return nil, nil, nil, fmt.Errorf("%s: row %d has %d cells, header has %d", path, i+2, len(row), len(header))
		}
		data[i] = make([]float64, len(row))
		for j, cell := range row {
			v, err := strconv.ParseFloat(strings.TrimSpace(cell), 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("%s: row %d column %q: %w", path, i+2, header[j], err)
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, nil, nil, fmt.Errorf("%s: row %d column %q: non-finite value %q", path, i+2, header[j], strings.TrimSpace(cell))
			}
			data[i][j] = v
		}
	}
	stats.Standardize(data)
	x := mat.FromRows(data)

	var protCols []int
	if protected != "" {
		for _, part := range strings.Split(protected, ",") {
			idx, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, nil, nil, fmt.Errorf("invalid protected index %q: %w", part, err)
			}
			if idx < 0 || idx >= len(header) {
				return nil, nil, nil, fmt.Errorf("protected index %d out of range for %d columns", idx, len(header))
			}
			protCols = append(protCols, idx)
		}
	}
	return x, protCols, header, nil
}

func writeCSV(w io.Writer, header []string, x *mat.Dense) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	row := make([]string, x.Cols())
	for i := 0; i < x.Rows(); i++ {
		for j, v := range x.Row(i) {
			row[j] = strconv.FormatFloat(v, 'g', 8, 64)
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
