package main

import (
	"bytes"
	"context"
	"strings"
	"testing"

	"repro/internal/dataset"
	"repro/internal/ingest"
)

func exportSynthetic(t *testing.T, dirty float64, seed int64) []byte {
	t.Helper()
	ds := dataset.SyntheticMixture(dataset.VariantRandom, 200, seed)
	var buf bytes.Buffer
	if err := export(&buf, ds, dirty, seed); err != nil {
		t.Fatalf("export: %v", err)
	}
	return buf.Bytes()
}

// TestExportDirtyRateIsSeededAndBounded: the corrupted export is a pure
// function of the seed, and only -dirty-rate-many rows (in expectation)
// differ from the clean export.
func TestExportDirtyRateIsSeededAndBounded(t *testing.T) {
	clean := exportSynthetic(t, 0, 7)
	dirty := exportSynthetic(t, 0.2, 7)
	if bytes.Equal(clean, dirty) {
		t.Fatal("dirty export identical to clean export")
	}
	if !bytes.Equal(dirty, exportSynthetic(t, 0.2, 7)) {
		t.Fatal("same seed produced different dirty exports")
	}

	cleanLines := strings.Split(strings.TrimRight(string(clean), "\n"), "\n")
	dirtyLines := strings.Split(strings.TrimRight(string(dirty), "\n"), "\n")
	if len(dirtyLines) != len(cleanLines) {
		t.Fatalf("dirty export has %d lines, clean has %d", len(dirtyLines), len(cleanLines))
	}
	changed := 0
	for i := range cleanLines {
		if cleanLines[i] != dirtyLines[i] {
			changed++
		}
	}
	if changed == 0 || changed > len(cleanLines)/2 {
		t.Fatalf("%d of %d lines corrupted at rate 0.2", changed, len(cleanLines))
	}
}

// TestDirtyExportFeedsQuarantine: every corrupted row must be caught by
// the ingest pipeline — quarantined, never encoded — and the clean rows
// must all survive.
func TestDirtyExportFeedsQuarantine(t *testing.T) {
	clean := exportSynthetic(t, 0, 11)
	dirty := exportSynthetic(t, 0.25, 11)
	cleanLines := strings.Split(strings.TrimRight(string(clean), "\n"), "\n")
	dirtyLines := strings.Split(strings.TrimRight(string(dirty), "\n"), "\n")
	corrupted := uint64(0)
	for i := range cleanLines {
		if cleanLines[i] != dirtyLines[i] {
			corrupted++
		}
	}

	res, err := ingest.Run(context.Background(), bytes.NewReader(dirty), ingest.Config{
		Dir:        t.TempDir(),
		Schema:     ingest.Schema{Outcome: "label"},
		ShardRows:  32,
		MaxBadRows: -1,
	})
	if err != nil {
		t.Fatalf("ingest: %v", err)
	}
	if res.BadRows != corrupted {
		t.Fatalf("ingest quarantined %d rows, corruption changed %d lines", res.BadRows, corrupted)
	}
	if res.GoodRows+res.BadRows != res.InputRows || res.InputRows != uint64(len(cleanLines)-1) {
		t.Fatalf("counters %d good + %d bad != %d input (want %d rows)",
			res.GoodRows, res.BadRows, res.InputRows, len(cleanLines)-1)
	}
}
