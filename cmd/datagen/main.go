// Command datagen exports the simulated datasets as CSV files so they can
// be inspected, plotted or consumed by external tooling. Each file carries
// the encoded (one-hot, standardised) features plus the outcome column
// (label or score) and the protected-group flag.
//
// Usage:
//
//	datagen -dataset compas -out compas.csv
//	datagen -dataset all -dir ./data -seed 7
//	datagen -dataset synthetic -records 1000000 -out big.csv
//	datagen -dataset synthetic -records 5000 -dirty-rate 0.02 -out dirty.csv
//
// -dirty-rate corrupts a seeded fraction of the exported data rows (wrong
// arity, non-numeric garbage, NaN/Inf, bad outcome) to exercise the
// ingest pipeline's quarantine path with realistic defects.
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "", "dataset to export: compas, census, credit, xing, airbnb, synthetic, all")
		out     = flag.String("out", "", "output CSV path (single dataset; default stdout)")
		dir     = flag.String("dir", ".", "output directory when -dataset all")
		seed    = flag.Int64("seed", 42, "random seed")
		records = flag.Int("records", 0, "override the record count (synthetic defaults to 100; million-row exports feed the scale benchmarks)")
		dirty   = flag.Float64("dirty-rate", 0, "fraction of data rows to corrupt (seeded; wrong arity, garbage cells, NaN/Inf, bad outcomes)")
	)
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: specify -dataset (compas, census, credit, xing, airbnb, synthetic, all)")
		os.Exit(2)
	}
	if *dirty < 0 || *dirty > 1 {
		fmt.Fprintln(os.Stderr, "datagen: -dirty-rate must be in [0, 1]")
		os.Exit(2)
	}
	if err := run(*name, *out, *dir, *seed, *records, *dirty); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func generators(seed int64, records int) map[string]func() *dataset.Dataset {
	cc := dataset.ClassificationConfig{Seed: seed, Records: records}
	synth := records
	if synth <= 0 {
		synth = 100
	}
	return map[string]func() *dataset.Dataset{
		"compas": func() *dataset.Dataset { return dataset.Compas(cc) },
		"census": func() *dataset.Dataset { return dataset.Census(cc) },
		"credit": func() *dataset.Dataset { return dataset.Credit(cc) },
		"xing": func() *dataset.Dataset {
			return dataset.Xing(dataset.UniformXingWeights, dataset.RankingConfig{Seed: seed})
		},
		"airbnb":    func() *dataset.Dataset { return dataset.Airbnb(dataset.RankingConfig{Seed: seed}) },
		"synthetic": func() *dataset.Dataset { return dataset.SyntheticMixture(dataset.VariantRandom, synth, seed) },
	}
}

func run(name, out, dir string, seed int64, records int, dirty float64) error {
	gens := generators(seed, records)
	if name == "all" {
		for dsName, gen := range gens {
			path := filepath.Join(dir, dsName+".csv")
			if err := exportTo(path, gen(), dirty, seed); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	}
	gen, ok := gens[name]
	if !ok {
		return fmt.Errorf("unknown dataset %q", name)
	}
	ds := gen()
	if out == "" {
		return export(os.Stdout, ds, dirty, seed)
	}
	if err := exportTo(out, ds, dirty, seed); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d records, %d features)\n", out, ds.Rows(), ds.Cols())
	return nil
}

func exportTo(path string, ds *dataset.Dataset, dirty float64, seed int64) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return export(f, ds, dirty, seed)
}

// corruptRow applies one seeded defect to an already-formatted CSV row.
// The palette mirrors what real feeds produce: truncated and over-long
// records, unparseable tokens, non-finite numerics and invalid outcomes.
func corruptRow(rng *rand.Rand, row []string, outcomeIdx int) []string {
	switch rng.Intn(6) {
	case 0: // wrong arity: cell dropped
		return row[:len(row)-1]
	case 1: // wrong arity: stray extra cell
		return append(row, "extra")
	case 2: // non-numeric garbage in a feature column
		row[rng.Intn(outcomeIdx)] = "garbage"
	case 3:
		row[rng.Intn(outcomeIdx)] = "NaN"
	case 4:
		row[rng.Intn(outcomeIdx)] = "+Inf"
	case 5: // outcome neither boolean nor numeric
		row[outcomeIdx] = "maybe"
	}
	return row
}

func export(w io.Writer, ds *dataset.Dataset, dirty float64, seed int64) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.FeatureNames...)
	outcomeCol := "label"
	if ds.Task == dataset.Ranking {
		outcomeCol = "score"
	}
	header = append(header, outcomeCol, "protected_group")
	if ds.Task == dataset.Ranking {
		header = append(header, "query")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	// Map rows to query names for ranking datasets.
	queryOf := map[int]string{}
	for _, q := range ds.Queries {
		for _, r := range q.Rows {
			queryOf[r] = q.Name
		}
	}

	// Corruption draws come from their own rng so the clean export of the
	// same seed stays byte-identical apart from the corrupted rows.
	var rng *rand.Rand
	if dirty > 0 {
		rng = rand.New(rand.NewSource(seed ^ 0x64697274)) // "dirt"
	}
	outcomeIdx := len(ds.FeatureNames)

	row := make([]string, 0, len(header))
	for i := 0; i < ds.Rows(); i++ {
		row = row[:0]
		for _, v := range ds.X.Row(i) {
			row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if ds.Task == dataset.Ranking {
			row = append(row, strconv.FormatFloat(ds.Score[i], 'g', 8, 64))
		} else {
			row = append(row, strconv.FormatBool(ds.Label[i]))
		}
		row = append(row, strconv.FormatBool(ds.Protected[i]))
		if ds.Task == dataset.Ranking {
			row = append(row, queryOf[i])
		}
		out := row
		if rng != nil && rng.Float64() < dirty {
			out = corruptRow(rng, row, outcomeIdx)
		}
		if err := cw.Write(out); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
