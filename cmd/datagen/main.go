// Command datagen exports the simulated datasets as CSV files so they can
// be inspected, plotted or consumed by external tooling. Each file carries
// the encoded (one-hot, standardised) features plus the outcome column
// (label or score) and the protected-group flag.
//
// Usage:
//
//	datagen -dataset compas -out compas.csv
//	datagen -dataset all -dir ./data -seed 7
//	datagen -dataset synthetic -records 1000000 -out big.csv
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"

	"repro/internal/dataset"
)

func main() {
	var (
		name    = flag.String("dataset", "", "dataset to export: compas, census, credit, xing, airbnb, synthetic, all")
		out     = flag.String("out", "", "output CSV path (single dataset; default stdout)")
		dir     = flag.String("dir", ".", "output directory when -dataset all")
		seed    = flag.Int64("seed", 42, "random seed")
		records = flag.Int("records", 0, "override the record count (synthetic defaults to 100; million-row exports feed the scale benchmarks)")
	)
	flag.Parse()

	if *name == "" {
		fmt.Fprintln(os.Stderr, "datagen: specify -dataset (compas, census, credit, xing, airbnb, synthetic, all)")
		os.Exit(2)
	}
	if err := run(*name, *out, *dir, *seed, *records); err != nil {
		fmt.Fprintln(os.Stderr, "datagen:", err)
		os.Exit(1)
	}
}

func generators(seed int64, records int) map[string]func() *dataset.Dataset {
	cc := dataset.ClassificationConfig{Seed: seed, Records: records}
	synth := records
	if synth <= 0 {
		synth = 100
	}
	return map[string]func() *dataset.Dataset{
		"compas": func() *dataset.Dataset { return dataset.Compas(cc) },
		"census": func() *dataset.Dataset { return dataset.Census(cc) },
		"credit": func() *dataset.Dataset { return dataset.Credit(cc) },
		"xing": func() *dataset.Dataset {
			return dataset.Xing(dataset.UniformXingWeights, dataset.RankingConfig{Seed: seed})
		},
		"airbnb":    func() *dataset.Dataset { return dataset.Airbnb(dataset.RankingConfig{Seed: seed}) },
		"synthetic": func() *dataset.Dataset { return dataset.SyntheticMixture(dataset.VariantRandom, synth, seed) },
	}
}

func run(name, out, dir string, seed int64, records int) error {
	gens := generators(seed, records)
	if name == "all" {
		for dsName, gen := range gens {
			path := filepath.Join(dir, dsName+".csv")
			if err := exportTo(path, gen()); err != nil {
				return err
			}
			fmt.Fprintf(os.Stderr, "wrote %s\n", path)
		}
		return nil
	}
	gen, ok := gens[name]
	if !ok {
		return fmt.Errorf("unknown dataset %q", name)
	}
	ds := gen()
	if out == "" {
		return export(os.Stdout, ds)
	}
	if err := exportTo(out, ds); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d records, %d features)\n", out, ds.Rows(), ds.Cols())
	return nil
}

func exportTo(path string, ds *dataset.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return export(f, ds)
}

func export(w io.Writer, ds *dataset.Dataset) error {
	cw := csv.NewWriter(w)
	header := append([]string(nil), ds.FeatureNames...)
	outcomeCol := "label"
	if ds.Task == dataset.Ranking {
		outcomeCol = "score"
	}
	header = append(header, outcomeCol, "protected_group")
	if ds.Task == dataset.Ranking {
		header = append(header, "query")
	}
	if err := cw.Write(header); err != nil {
		return err
	}

	// Map rows to query names for ranking datasets.
	queryOf := map[int]string{}
	for _, q := range ds.Queries {
		for _, r := range q.Rows {
			queryOf[r] = q.Name
		}
	}

	row := make([]string, 0, len(header))
	for i := 0; i < ds.Rows(); i++ {
		row = row[:0]
		for _, v := range ds.X.Row(i) {
			row = append(row, strconv.FormatFloat(v, 'g', 8, 64))
		}
		if ds.Task == dataset.Ranking {
			row = append(row, strconv.FormatFloat(ds.Score[i], 'g', 8, 64))
		} else {
			row = append(row, strconv.FormatBool(ds.Label[i]))
		}
		row = append(row, strconv.FormatBool(ds.Protected[i]))
		if ds.Task == dataset.Ranking {
			row = append(row, queryOf[i])
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
