package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFitParallelRestarts/Workers=1-8         	       2	 512345678 ns/op	         0.1234 final_loss	 1024 B/op	      12 allocs/op
BenchmarkFitParallelRestarts/Workers=4-8         	       8	 131072000 ns/op	         0.1234 final_loss
BenchmarkTransform    	    1000	   1048576 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFitParallelRestarts/Workers=1" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 2 || r.NsPerOp != 512345678 {
		t.Fatalf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["final_loss"] != 0.1234 || r.Metrics["B/op"] != 1024 || r.Metrics["allocs/op"] != 12 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if got := results[2]; got.Name != "BenchmarkTransform" || got.Procs != 1 || got.Metrics != nil {
		t.Fatalf("plain line parsed as %+v", got)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok repro 1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise", len(results))
	}
}
