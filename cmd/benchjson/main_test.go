package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
BenchmarkFitParallelRestarts/Workers=1-8         	       2	 512345678 ns/op	         0.1234 final_loss	 1024 B/op	      12 allocs/op
BenchmarkFitParallelRestarts/Workers=4-8         	       8	 131072000 ns/op	         0.1234 final_loss
BenchmarkTransform    	    1000	   1048576 ns/op
PASS
ok  	repro	12.3s
`

func TestParse(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader(sample)))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3", len(results))
	}
	r := results[0]
	if r.Name != "BenchmarkFitParallelRestarts/Workers=1" || r.Procs != 8 {
		t.Fatalf("name/procs = %q/%d", r.Name, r.Procs)
	}
	if r.Iterations != 2 || r.NsPerOp != 512345678 {
		t.Fatalf("iterations/ns = %d/%v", r.Iterations, r.NsPerOp)
	}
	if r.Metrics["final_loss"] != 0.1234 || r.Metrics["B/op"] != 1024 || r.Metrics["allocs/op"] != 12 {
		t.Fatalf("metrics = %v", r.Metrics)
	}
	if got := results[2]; got.Name != "BenchmarkTransform" || got.Procs != 1 || got.Metrics != nil {
		t.Fatalf("plain line parsed as %+v", got)
	}
}

func TestParseSkipsNonBenchLines(t *testing.T) {
	results, err := parse(bufio.NewScanner(strings.NewReader("PASS\nok repro 1s\n")))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 0 {
		t.Fatalf("parsed %d results from noise", len(results))
	}
}

func TestCompareAllocs(t *testing.T) {
	baseline := `[
		{"name": "BenchmarkServerTransform", "procs": 8, "iterations": 100, "ns_per_op": 33000,
		 "metrics": {"allocs/op": 0, "B/op": 3}},
		{"name": "BenchmarkMicroBatcher", "procs": 8, "iterations": 100, "ns_per_op": 1100000,
		 "metrics": {"allocs/op": 10, "B/op": 589}}
	]`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(name string, allocs float64) Result {
		return Result{Name: name, Metrics: map[string]float64{"allocs/op": allocs}}
	}

	// Within slack: a zero baseline must stay exactly zero, a non-zero
	// one gets proportional headroom (10 + ceil(10*25%) = 13).
	ok := []Result{mk("BenchmarkServerTransform", 0), mk("BenchmarkMicroBatcher", 13)}
	regs, err := compareAllocs(path, ok, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("unexpected regressions: %v", regs)
	}

	// Over slack: both must be flagged.
	bad := []Result{mk("BenchmarkServerTransform", 1), mk("BenchmarkMicroBatcher", 14)}
	regs, err = compareAllocs(path, bad, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}

	// Benchmarks absent from the baseline are never gated.
	regs, err = compareAllocs(path, []Result{mk("BenchmarkBrandNew", 999)}, 25)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("new benchmark gated: %v", regs)
	}
}

func TestCompareMetricsGatesFinalLoss(t *testing.T) {
	baseline := `[
		{"name": "BenchmarkFitLarge/m=100k", "procs": 8, "iterations": 1, "ns_per_op": 1,
		 "metrics": {"allocs/op": 100, "final_loss": 674000}}
	]`
	path := filepath.Join(t.TempDir(), "base.json")
	if err := os.WriteFile(path, []byte(baseline), 0o644); err != nil {
		t.Fatal(err)
	}
	mk := func(loss, allocs float64) []Result {
		return []Result{{Name: "BenchmarkFitLarge/m=100k",
			Metrics: map[string]float64{"allocs/op": allocs, "final_loss": loss}}}
	}
	gates := []string{"allocs/op", "final_loss"}

	// Within proportional slack (674000 × 1.05 = 707700); a lower loss is
	// never a regression.
	for _, loss := range []float64{674000, 707000, 1} {
		regs, err := compareMetrics(path, mk(loss, 100), 5, gates)
		if err != nil {
			t.Fatal(err)
		}
		if len(regs) != 0 {
			t.Fatalf("loss %g flagged: %v", loss, regs)
		}
	}

	// Loss drift beyond slack is flagged even with allocs flat.
	regs, err := compareMetrics(path, mk(710000, 100), 5, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 1 || !strings.Contains(regs[0], "final_loss") {
		t.Fatalf("regressions = %v, want one final_loss entry", regs)
	}

	// Both metrics over: both flagged.
	regs, err = compareMetrics(path, mk(710000, 200), 5, gates)
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 2 {
		t.Fatalf("regressions = %v, want 2", regs)
	}

	// An un-gated metric never fires.
	regs, err = compareMetrics(path, mk(9e9, 100), 5, []string{"allocs/op"})
	if err != nil {
		t.Fatal(err)
	}
	if len(regs) != 0 {
		t.Fatalf("ungated metric flagged: %v", regs)
	}
}
