// Command benchjson converts `go test -bench` text output, read from
// stdin, into a JSON array so benchmark results can be archived and
// diffed across commits.
//
// Usage:
//
//	go test -bench=FitParallelRestarts -benchmem . | benchjson -out BENCH_fit.json
//
// Each benchmark line becomes one object carrying the benchmark name, GOMAXPROCS
// suffix, iteration count, ns/op, and any extra metrics (B/op, allocs/op,
// custom b.ReportMetric units).
//
// With -compare <baseline.json>, benchjson instead gates allocation
// regressions: for every benchmark present in both the baseline and the
// fresh stdin run, the current allocs/op must not exceed the archived
// value by more than -slack-pct percent (rounded up, so a 0-alloc
// baseline stays exactly 0). A regression prints the offenders and exits
// 1.
//
//	go test -bench='ServerTransform$' -benchmem . | benchjson -compare BENCH_serve.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix,
	// e.g. "BenchmarkFitParallelRestarts/Workers=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if absent).
	Procs int `json:"procs"`
	// Iterations is the b.N the measurement ran with.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line,
	// keyed by unit: B/op, allocs/op and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to gate allocs/op against (exit 1 on regression)")
	slackPct := flag.Float64("slack-pct", 25, "allowed allocs/op headroom over the baseline, in percent (with -compare)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		regressions, err := compareAllocs(*compare, results, *slackPct)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: ALLOC REGRESSION:", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: allocs/op within baseline %s for %d benchmark(s)\n", *compare, len(results))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}

// parse extracts benchmark lines from go-test output, ignoring everything
// else (status lines, PASS/ok footers, build noise).
func parse(sc *bufio.Scanner) ([]Result, error) {
	var results []Result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iterations, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Procs: 1, Iterations: iters}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		// The rest of the line is "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// compareAllocs checks the allocs/op of every fresh result that also
// appears in the baseline file. The limit is baseline + ceil(baseline ×
// slackPct/100): proportional headroom absorbs pool jitter on non-zero
// baselines while a 0-alloc baseline is gated exactly. Benchmarks absent
// from either side are ignored, so the gate never blocks new or renamed
// benchmarks.
func compareAllocs(baselinePath string, fresh []Result, slackPct float64) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var baseline []Result
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	base := make(map[string]float64)
	for _, r := range baseline {
		if a, ok := r.Metrics["allocs/op"]; ok {
			base[r.Name] = a
		}
	}
	var regressions []string
	for _, r := range fresh {
		want, ok := base[r.Name]
		if !ok {
			continue
		}
		got, ok := r.Metrics["allocs/op"]
		if !ok {
			continue
		}
		limit := want + math.Ceil(want*slackPct/100)
		if got > limit {
			regressions = append(regressions,
				fmt.Sprintf("%s: %.0f allocs/op, baseline %.0f (limit %.0f)", r.Name, got, want, limit))
		}
	}
	return regressions, nil
}
