// Command benchjson converts `go test -bench` text output, read from
// stdin, into a JSON array so benchmark results can be archived and
// diffed across commits.
//
// Usage:
//
//	go test -bench=FitParallelRestarts -benchmem . | benchjson -out BENCH_fit.json
//
// Each benchmark line becomes one object carrying the benchmark name, GOMAXPROCS
// suffix, iteration count, ns/op, and any extra metrics (B/op, allocs/op,
// custom b.ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix,
	// e.g. "BenchmarkFitParallelRestarts/Workers=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if absent).
	Procs int `json:"procs"`
	// Iterations is the b.N the measurement ran with.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line,
	// keyed by unit: B/op, allocs/op and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}

// parse extracts benchmark lines from go-test output, ignoring everything
// else (status lines, PASS/ok footers, build noise).
func parse(sc *bufio.Scanner) ([]Result, error) {
	var results []Result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iterations, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Procs: 1, Iterations: iters}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		// The rest of the line is "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}
