// Command benchjson converts `go test -bench` text output, read from
// stdin, into a JSON array so benchmark results can be archived and
// diffed across commits.
//
// Usage:
//
//	go test -bench=FitParallelRestarts -benchmem . | benchjson -out BENCH_fit.json
//
// Each benchmark line becomes one object carrying the benchmark name, GOMAXPROCS
// suffix, iteration count, ns/op, and any extra metrics (B/op, allocs/op,
// custom b.ReportMetric units).
//
// With -compare <baseline.json>, benchjson instead gates metric
// regressions: for every benchmark present in both the baseline and the
// fresh stdin run, each metric named by -gate (default allocs/op) must
// not exceed the archived value by more than -slack-pct percent.
// allocs/op headroom is rounded up to whole allocations, so a 0-alloc
// baseline stays exactly 0; continuous metrics such as final_loss get
// plain proportional slack. Only upward drift is flagged — a lower loss
// or allocation count is an improvement, not a regression. Offenders
// print to stderr and exit 1.
//
//	go test -bench='ServerTransform$' -benchmem . | benchjson -compare BENCH_serve.json
//	go test -bench=FitLarge -benchmem . | benchjson -compare BENCH_fit.json -gate allocs/op,final_loss
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the benchmark name without the -N GOMAXPROCS suffix,
	// e.g. "BenchmarkFitParallelRestarts/Workers=4".
	Name string `json:"name"`
	// Procs is the GOMAXPROCS suffix (1 if absent).
	Procs int `json:"procs"`
	// Iterations is the b.N the measurement ran with.
	Iterations int64 `json:"iterations"`
	// NsPerOp is the headline ns/op measurement.
	NsPerOp float64 `json:"ns_per_op"`
	// Metrics holds every further "<value> <unit>" pair on the line,
	// keyed by unit: B/op, allocs/op and custom ReportMetric units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	compare := flag.String("compare", "", "baseline JSON to gate metrics against (exit 1 on regression)")
	slackPct := flag.Float64("slack-pct", 25, "allowed headroom over the baseline, in percent (with -compare)")
	gate := flag.String("gate", "allocs/op", "comma-separated metrics to gate with -compare (e.g. allocs/op,final_loss)")
	flag.Parse()

	results, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}

	if *compare != "" {
		metrics := strings.Split(*gate, ",")
		regressions, err := compareMetrics(*compare, results, *slackPct, metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, r := range regressions {
			fmt.Fprintln(os.Stderr, "benchjson: REGRESSION:", r)
		}
		if len(regressions) > 0 {
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchjson: %s within baseline %s for %d benchmark(s)\n", *gate, *compare, len(results))
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *out != "" {
		fmt.Fprintf(os.Stderr, "benchjson: wrote %d results to %s\n", len(results), *out)
	}
}

// parse extracts benchmark lines from go-test output, ignoring everything
// else (status lines, PASS/ok footers, build noise).
func parse(sc *bufio.Scanner) ([]Result, error) {
	var results []Result
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// Shortest valid line: name, iterations, value, unit.
		if len(fields) < 4 {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Name: fields[0], Procs: 1, Iterations: iters}
		if i := strings.LastIndex(r.Name, "-"); i > 0 {
			if p, err := strconv.Atoi(r.Name[i+1:]); err == nil {
				r.Name, r.Procs = r.Name[:i], p
			}
		}
		// The rest of the line is "<value> <unit>" pairs.
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("line %q: bad value %q", line, fields[i])
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				r.NsPerOp = v
				continue
			}
			if r.Metrics == nil {
				r.Metrics = map[string]float64{}
			}
			r.Metrics[unit] = v
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// compareAllocs gates allocs/op only — the historical default, kept as
// the single-metric form of compareMetrics.
func compareAllocs(baselinePath string, fresh []Result, slackPct float64) ([]string, error) {
	return compareMetrics(baselinePath, fresh, slackPct, []string{"allocs/op"})
}

// compareMetrics checks the named metrics of every fresh result that
// also appears in the baseline file. For allocs/op the limit is
// baseline + ceil(baseline × slackPct/100): proportional headroom
// absorbs pool jitter on non-zero baselines while a 0-alloc baseline is
// gated exactly. Continuous metrics (final_loss, B/op, …) get plain
// proportional slack. Only upward drift counts: a drop is an
// improvement. Benchmarks or metrics absent from either side are
// ignored, so the gate never blocks new or renamed benchmarks.
func compareMetrics(baselinePath string, fresh []Result, slackPct float64, metrics []string) ([]string, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return nil, err
	}
	var baseline []Result
	if err := json.Unmarshal(data, &baseline); err != nil {
		return nil, fmt.Errorf("%s: %w", baselinePath, err)
	}
	base := make(map[string]map[string]float64)
	for _, r := range baseline {
		base[r.Name] = r.Metrics
	}
	var regressions []string
	for _, r := range fresh {
		baseMetrics, ok := base[r.Name]
		if !ok {
			continue
		}
		for _, metric := range metrics {
			metric = strings.TrimSpace(metric)
			want, ok := baseMetrics[metric]
			if !ok {
				continue
			}
			got, ok := r.Metrics[metric]
			if !ok {
				continue
			}
			var limit float64
			if metric == "allocs/op" {
				limit = want + math.Ceil(want*slackPct/100)
			} else {
				limit = want + math.Abs(want)*slackPct/100
			}
			if got > limit {
				regressions = append(regressions,
					fmt.Sprintf("%s: %g %s, baseline %g (limit %g)", r.Name, got, metric, want, limit))
			}
		}
	}
	return regressions, nil
}
