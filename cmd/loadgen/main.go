// Command loadgen is a closed-loop load generator for ifair-server: N
// workers each keep exactly one request in flight against the transform
// endpoint, with optional seeded burst phases multiplying the offered
// concurrency, a per-request deadline propagated to the server, and the
// retrying client from internal/server doing the backoff. At the end it
// reports goodput, shed rate and exact latency quantiles, and exits
// non-zero if goodput fell below -min-goodput — so `make loadgen` is a
// pass/fail overload smoke test, not just a number printer.
//
// Usage against a running server:
//
//	loadgen -addr http://localhost:8080 -model credit -dims 3 \
//	        -concurrency 32 -duration 30s -deadline 250ms
//
// Or fully self-contained (spins an in-process server over a synthetic
// model, drives it, and tears it down):
//
//	loadgen -selftest -duration 5s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ifair"
	"repro/internal/mat"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type report struct {
	mu        sync.Mutex
	latencies []time.Duration

	attempts atomic.Int64
	ok       atomic.Int64
	shed     atomic.Int64
	timeout  atomic.Int64
	errs     atomic.Int64
}

func (r *report) observe(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	r.mu.Unlock()
}

// quantile returns the exact q-quantile of the recorded latencies
// (nearest-rank); no bucketing, loadgen keeps every sample.
func (r *report) quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return 0
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	idx := int(q * float64(len(r.latencies)-1))
	return r.latencies[idx]
}

func run() error {
	var (
		addr        = flag.String("addr", "", "server base URL, e.g. http://localhost:8080")
		model       = flag.String("model", "credit", "model name to drive")
		dims        = flag.Int("dims", 3, "input row width of the model")
		concurrency = flag.Int("concurrency", 16, "base closed-loop workers (one request in flight each)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		deadline    = flag.Duration("deadline", 500*time.Millisecond, "per-request deadline, propagated to the server")
		retries     = flag.Int("retries", 2, "retries per request on shed/transport failure")
		bursts      = flag.Int("bursts", 0, "number of seeded burst phases (0 = steady load)")
		burstMax    = flag.Int("burst-max", 4, "maximum load multiplier during a burst")
		seed        = flag.Int64("seed", 1, "seed for the burst schedule (replays exactly)")
		minGoodput  = flag.Float64("min-goodput", 0, "exit 1 if successful requests/sec falls below this")
		selftest    = flag.Bool("selftest", false, "spin an in-process server over a synthetic model and drive that")
	)
	flag.Parse()

	base := *addr
	if *selftest {
		ts, cleanup, err := selftestServer(*model, *dims)
		if err != nil {
			return err
		}
		defer cleanup()
		base = ts.URL
		fmt.Printf("selftest server on %s (tiny capacity: expect sheds)\n", base)
	}
	if base == "" {
		return fmt.Errorf("specify -addr or -selftest")
	}

	// One tick per second of runtime; the burst schedule multiplies the
	// worker count during its phases.
	horizon := int(duration.Seconds())
	if horizon < 1 {
		horizon = 1
	}
	schedule := faultinject.Bursts(*seed, *bursts, horizon, 1, horizon/2+1, *burstMax)
	maxWorkers := *concurrency * maxFactor(schedule)

	row := make([]float64, *dims)
	for i := range row {
		row[i] = 0.25 * float64(i+1)
	}

	rep := &report{}
	client := &server.Client{
		BaseURL:    base,
		HTTPClient: &http.Client{Timeout: 2 * *deadline},
		MaxRetries: *retries,
		BaseDelay:  10 * time.Millisecond,
		MaxDelay:   *deadline,
		Seed:       *seed,
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()

	// Closed loop: every worker waits for its response before sending
	// the next request. Burst workers only run while the current tick's
	// factor admits their index.
	var wg sync.WaitGroup
	for w := 0; w < maxWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for ctx.Err() == nil {
				tick := int(time.Since(start).Seconds())
				if w >= *concurrency*faultinject.FactorAt(schedule, tick) {
					// Outside a burst this worker idles.
					select {
					case <-time.After(50 * time.Millisecond):
					case <-ctx.Done():
					}
					continue
				}
				rep.attempts.Add(1)
				reqCtx, reqCancel := context.WithTimeout(ctx, *deadline)
				t0 := time.Now()
				_, err := client.Transform(reqCtx, *model, row)
				reqCancel()
				switch {
				case err == nil:
					rep.ok.Add(1)
					rep.observe(time.Since(t0))
				case isShed(err):
					rep.shed.Add(1)
				case reqCtx.Err() != nil && ctx.Err() == nil:
					rep.timeout.Add(1)
				case ctx.Err() != nil:
					// Run over; not a failure.
				default:
					rep.errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	goodput := float64(rep.ok.Load()) / elapsed.Seconds()
	attempts := rep.attempts.Load()
	shedRate := 0.0
	if attempts > 0 {
		shedRate = float64(rep.shed.Load()) / float64(attempts)
	}
	fmt.Printf("duration        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("attempts        %d\n", attempts)
	fmt.Printf("ok              %d (%.1f req/s goodput)\n", rep.ok.Load(), goodput)
	fmt.Printf("shed            %d (%.1f%% of attempts)\n", rep.shed.Load(), 100*shedRate)
	fmt.Printf("deadline-expired %d\n", rep.timeout.Load())
	fmt.Printf("errors          %d\n", rep.errs.Load())
	fmt.Printf("latency p50     %v\n", rep.quantile(0.50).Round(time.Microsecond))
	fmt.Printf("latency p90     %v\n", rep.quantile(0.90).Round(time.Microsecond))
	fmt.Printf("latency p99     %v\n", rep.quantile(0.99).Round(time.Microsecond))
	st := client.Stats()
	fmt.Printf("client          %d round trips, %d retries, %d sheds seen\n", st.Requests, st.Retries, st.Shed)
	if len(schedule) > 0 {
		fmt.Printf("bursts          %+v\n", schedule)
	}

	if rep.errs.Load() > 0 && rep.ok.Load() == 0 {
		return fmt.Errorf("every request errored; is the server up and the model name right?")
	}
	if *minGoodput > 0 && goodput < *minGoodput {
		return fmt.Errorf("goodput %.1f req/s below -min-goodput %.1f", goodput, *minGoodput)
	}
	return nil
}

func maxFactor(bursts []faultinject.Burst) int {
	f := 1
	for _, b := range bursts {
		if b.Factor > f {
			f = b.Factor
		}
	}
	return f
}

// isShed reports whether err is a shed the server told us about
// (already retried by the client, so reaching here means the retry
// budget is spent).
func isShed(err error) bool {
	var se *server.StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable
}

// selftestServer builds a synthetic model in a temp dir and serves it
// with deliberately tiny capacity so sheds actually happen.
func selftestServer(name string, dims int) (*httptest.Server, func(), error) {
	dir, err := os.MkdirTemp("", "loadgen-selftest-")
	if err != nil {
		return nil, nil, err
	}
	cleanupDir := func() { os.RemoveAll(dir) }

	protos := mat.NewDense(4, dims)
	for i := 0; i < 4; i++ {
		for j := 0; j < dims; j++ {
			protos.Set(i, j, float64(i)+0.1*float64(j))
		}
	}
	alpha := make([]float64, dims)
	for j := range alpha {
		alpha[j] = 1
	}
	m := &ifair.Model{Prototypes: protos, Alpha: alpha, P: 2, Kernel: ifair.ExpKernel, Loss: 0.5}
	f, err := os.Create(filepath.Join(dir, name+".json"))
	if err != nil {
		cleanupDir()
		return nil, nil, err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		cleanupDir()
		return nil, nil, err
	}
	if err := f.Close(); err != nil {
		cleanupDir()
		return nil, nil, err
	}

	s, err := server.New(server.Config{
		ModelDir:       dir,
		MaxBatch:       8,
		MaxWait:        2 * time.Millisecond,
		RequestTimeout: 250 * time.Millisecond,
		MaxInflight:    4,
		MaxQueue:       8,
		MaxQueueWait:   30 * time.Millisecond,
	})
	if err != nil {
		cleanupDir()
		return nil, nil, err
	}
	ts := httptest.NewServer(s.Handler())
	cleanup := func() {
		ts.Close()
		s.Close()
		cleanupDir()
	}
	return ts, cleanup, nil
}
