// Command loadgen is a closed-loop load generator for ifair-server and
// ifair-router: N workers each keep exactly one request in flight
// against the transform endpoint, with optional seeded burst phases
// multiplying the offered concurrency, a per-request deadline propagated
// to the server, and the retrying client from internal/server doing the
// backoff. -addr accepts a comma-separated target list (multi-target
// mode: workers are spread round-robin across targets, per-target
// goodput reported at the end). At the end it reports goodput, shed rate
// and exact latency quantiles, and exits non-zero if goodput fell below
// -min-goodput — so `make loadgen` is a pass/fail overload smoke test,
// not just a number printer.
//
// Usage against a running server or router:
//
//	loadgen -addr http://localhost:8080 -model credit -dims 3 \
//	        -concurrency 32 -duration 30s -deadline 250ms
//
// Or fully self-contained: -selftest spins an in-process fleet over a
// synthetic model — -replicas N puts N replica servers behind an
// in-process router, and -chaos K kills replicas mid-run on a seeded
// outage schedule from internal/faultinject, proving goodput holds while
// the router routes around the dead backend:
//
//	loadgen -selftest -replicas 4 -chaos 2 -duration 8s
//
// Against a server running a canary rollout (ifair-server -rollout),
// -canary-report sends a distinct X-Canary-Key per request and breaks
// goodput and latency down per served model version, so a soak can
// assert the canary arm's parity with the stable arm.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faultinject"
	"repro/internal/ifair"
	"repro/internal/mat"
	"repro/internal/router"
	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

type report struct {
	mu         sync.Mutex
	latencies  []time.Duration
	perVersion map[int]*versionStats

	attempts atomic.Int64
	ok       atomic.Int64
	shed     atomic.Int64
	timeout  atomic.Int64
	errs     atomic.Int64

	okPerTarget []atomic.Int64
}

// versionStats aggregates the requests one model version served — the
// per-arm breakdown a canary soak compares across the split.
type versionStats struct {
	ok        int64
	latencies []time.Duration
}

func (v *versionStats) quantile(q float64) time.Duration {
	if len(v.latencies) == 0 {
		return 0
	}
	sort.Slice(v.latencies, func(i, j int) bool { return v.latencies[i] < v.latencies[j] })
	return v.latencies[int(q*float64(len(v.latencies)-1))]
}

func (r *report) observe(d time.Duration) {
	r.mu.Lock()
	r.latencies = append(r.latencies, d)
	r.mu.Unlock()
}

func (r *report) observeVersion(version int, d time.Duration) {
	r.mu.Lock()
	if r.perVersion == nil {
		r.perVersion = make(map[int]*versionStats)
	}
	vs := r.perVersion[version]
	if vs == nil {
		vs = &versionStats{}
		r.perVersion[version] = vs
	}
	vs.ok++
	vs.latencies = append(vs.latencies, d)
	r.mu.Unlock()
}

// quantile returns the exact q-quantile of the recorded latencies
// (nearest-rank); no bucketing, loadgen keeps every sample.
func (r *report) quantile(q float64) time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.latencies) == 0 {
		return 0
	}
	sort.Slice(r.latencies, func(i, j int) bool { return r.latencies[i] < r.latencies[j] })
	idx := int(q * float64(len(r.latencies)-1))
	return r.latencies[idx]
}

func run() error {
	var (
		addr        = flag.String("addr", "", "target base URL(s), comma-separated for multi-target mode")
		model       = flag.String("model", "credit", "model name to drive")
		dims        = flag.Int("dims", 3, "input row width of the model")
		concurrency = flag.Int("concurrency", 16, "base closed-loop workers (one request in flight each)")
		duration    = flag.Duration("duration", 10*time.Second, "how long to drive load")
		deadline    = flag.Duration("deadline", 500*time.Millisecond, "per-request deadline, propagated to the server")
		retries     = flag.Int("retries", 2, "retries per request on shed/transport failure")
		bursts      = flag.Int("bursts", 0, "number of seeded burst phases (0 = steady load)")
		burstMax    = flag.Int("burst-max", 4, "maximum load multiplier during a burst")
		seed        = flag.Int64("seed", 1, "seed for the burst and chaos schedules (replays exactly)")
		minGoodput  = flag.Float64("min-goodput", 0, "exit 1 if successful requests/sec falls below this")
		canaryRpt   = flag.Bool("canary-report", false, "send a distinct X-Canary-Key per request and report per-version (per-arm) goodput and latency")
		selftest    = flag.Bool("selftest", false, "spin an in-process fleet over a synthetic model and drive that")
		replicas    = flag.Int("replicas", 1, "selftest: replica servers behind an in-process router (1 = bare server)")
		chaos       = flag.Int("chaos", 0, "selftest: seeded replica outages injected during the run")
	)
	flag.Parse()

	targets := splitTargets(*addr)
	if *selftest {
		fleet, err := selftestFleet(*model, *dims, *replicas)
		if err != nil {
			return err
		}
		defer fleet.cleanup()
		targets = []string{fleet.url}
		if *replicas > 1 {
			fmt.Printf("selftest fleet: router on %s over %d replicas (tiny capacity: expect sheds)\n", fleet.url, *replicas)
		} else {
			fmt.Printf("selftest server on %s (tiny capacity: expect sheds)\n", fleet.url)
		}
		if *chaos > 0 {
			if *replicas < 2 {
				return fmt.Errorf("-chaos needs -replicas ≥ 2 (killing the only replica proves nothing)")
			}
			horizon := int(duration.Seconds())
			if horizon < 1 {
				horizon = 1
			}
			outages := faultinject.Outages(*seed, *chaos, *replicas, horizon, 1, horizon / *chaos)
			fmt.Printf("chaos schedule   %+v\n", outages)
			fleet.runChaos(outages)
		}
	}
	if len(targets) == 0 {
		return fmt.Errorf("specify -addr (comma-separated for multiple targets) or -selftest")
	}

	// One tick per second of runtime; the burst schedule multiplies the
	// worker count during its phases.
	horizon := int(duration.Seconds())
	if horizon < 1 {
		horizon = 1
	}
	schedule := faultinject.Bursts(*seed, *bursts, horizon, 1, horizon/2+1, *burstMax)
	maxWorkers := *concurrency * maxFactor(schedule)

	row := make([]float64, *dims)
	for i := range row {
		row[i] = 0.25 * float64(i+1)
	}

	rep := &report{okPerTarget: make([]atomic.Int64, len(targets))}
	clients := make([]*server.Client, len(targets))
	for i, t := range targets {
		clients[i] = &server.Client{
			BaseURL:    t,
			HTTPClient: &http.Client{Timeout: 2 * *deadline},
			MaxRetries: *retries,
			BaseDelay:  10 * time.Millisecond,
			MaxDelay:   *deadline,
			Seed:       *seed + int64(i),
		}
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	start := time.Now()

	// Closed loop: every worker waits for its response before sending
	// the next request. Workers are spread round-robin across targets;
	// burst workers only run while the current tick's factor admits
	// their index.
	var wg sync.WaitGroup
	for w := 0; w < maxWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			target := w % len(targets)
			client := clients[target]
			seq := 0
			for ctx.Err() == nil {
				tick := int(time.Since(start).Seconds())
				if w >= *concurrency*faultinject.FactorAt(schedule, tick) {
					// Outside a burst this worker idles.
					select {
					case <-time.After(50 * time.Millisecond):
					case <-ctx.Done():
					}
					continue
				}
				rep.attempts.Add(1)
				reqCtx, reqCancel := context.WithTimeout(ctx, *deadline)
				t0 := time.Now()
				var err error
				version := 0
				if *canaryRpt {
					// A fresh key per request samples the traffic split; the
					// response's version attributes the latency to its arm.
					seq++
					_, version, err = client.TransformKeyed(reqCtx, *model, fmt.Sprintf("lg-%d-%d", w, seq), row)
				} else {
					_, err = client.Transform(reqCtx, *model, row)
				}
				reqCancel()
				switch {
				case err == nil:
					rep.ok.Add(1)
					rep.okPerTarget[target].Add(1)
					rep.observe(time.Since(t0))
					if *canaryRpt {
						rep.observeVersion(version, time.Since(t0))
					}
				case isShed(err):
					rep.shed.Add(1)
				case reqCtx.Err() != nil && ctx.Err() == nil:
					rep.timeout.Add(1)
				case ctx.Err() != nil:
					// Run over; not a failure.
				default:
					rep.errs.Add(1)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	goodput := float64(rep.ok.Load()) / elapsed.Seconds()
	attempts := rep.attempts.Load()
	shedRate := 0.0
	if attempts > 0 {
		shedRate = float64(rep.shed.Load()) / float64(attempts)
	}
	fmt.Printf("duration        %v\n", elapsed.Round(time.Millisecond))
	fmt.Printf("attempts        %d\n", attempts)
	fmt.Printf("ok              %d (%.1f req/s goodput)\n", rep.ok.Load(), goodput)
	if len(targets) > 1 {
		for i, t := range targets {
			fmt.Printf("  target %-2d     %d ok (%s)\n", i, rep.okPerTarget[i].Load(), t)
		}
	}
	fmt.Printf("shed            %d (%.1f%% of attempts)\n", rep.shed.Load(), 100*shedRate)
	fmt.Printf("deadline-expired %d\n", rep.timeout.Load())
	fmt.Printf("errors          %d\n", rep.errs.Load())
	fmt.Printf("latency p50     %v\n", rep.quantile(0.50).Round(time.Microsecond))
	fmt.Printf("latency p90     %v\n", rep.quantile(0.90).Round(time.Microsecond))
	fmt.Printf("latency p99     %v\n", rep.quantile(0.99).Round(time.Microsecond))
	var trips, retriesSeen, shedsSeen int64
	for _, c := range clients {
		st := c.Stats()
		trips += st.Requests
		retriesSeen += st.Retries
		shedsSeen += st.Shed
	}
	fmt.Printf("client          %d round trips, %d retries, %d sheds seen\n", trips, retriesSeen, shedsSeen)
	if len(schedule) > 0 {
		fmt.Printf("bursts          %+v\n", schedule)
	}
	if *canaryRpt {
		rep.mu.Lock()
		versions := make([]int, 0, len(rep.perVersion))
		for v := range rep.perVersion {
			versions = append(versions, v)
		}
		sort.Ints(versions)
		fmt.Printf("canary report (per served version):\n")
		okTotal := rep.ok.Load()
		for _, v := range versions {
			vs := rep.perVersion[v]
			share := 0.0
			if okTotal > 0 {
				share = 100 * float64(vs.ok) / float64(okTotal)
			}
			fmt.Printf("  v%-3d          %d ok (%.1f%%, %.1f req/s)  p50 %v  p99 %v\n",
				v, vs.ok, share, float64(vs.ok)/elapsed.Seconds(),
				vs.quantile(0.50).Round(time.Microsecond), vs.quantile(0.99).Round(time.Microsecond))
		}
		rep.mu.Unlock()
	}

	if rep.errs.Load() > 0 && rep.ok.Load() == 0 {
		return fmt.Errorf("every request errored; is the server up and the model name right?")
	}
	if *minGoodput > 0 && goodput < *minGoodput {
		return fmt.Errorf("goodput %.1f req/s below -min-goodput %.1f", goodput, *minGoodput)
	}
	return nil
}

func splitTargets(addr string) []string {
	if addr == "" {
		return nil
	}
	parts := strings.Split(addr, ",")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func maxFactor(bursts []faultinject.Burst) int {
	f := 1
	for _, b := range bursts {
		if b.Factor > f {
			f = b.Factor
		}
	}
	return f
}

// isShed reports whether err is a shed the server told us about
// (already retried by the client, so reaching here means the retry
// budget is spent).
func isShed(err error) bool {
	var se *server.StatusError
	if !errors.As(err, &se) {
		return false
	}
	return se.Status == http.StatusTooManyRequests || se.Status == http.StatusServiceUnavailable
}

// fleet is the self-test topology: one or more in-process replica
// servers, optionally behind an in-process router, each replica killable
// for chaos runs.
type fleet struct {
	url      string
	down     []*atomic.Bool
	cleanups []func()
	ctx      context.Context
	cancel   context.CancelFunc
}

func (f *fleet) cleanup() {
	f.cancel()
	for i := len(f.cleanups) - 1; i >= 0; i-- {
		f.cleanups[i]()
	}
}

// runChaos flips replica down-flags on the seeded outage schedule, one
// evaluation per 100ms so outage edges land within a tenth of a tick.
func (f *fleet) runChaos(outages []faultinject.Outage) {
	start := time.Now()
	go func() {
		t := time.NewTicker(100 * time.Millisecond)
		defer t.Stop()
		for {
			select {
			case <-f.ctx.Done():
				return
			case <-t.C:
				tick := int(time.Since(start).Seconds())
				for i, d := range f.down {
					d.Store(faultinject.DownAt(outages, i, tick))
				}
			}
		}
	}()
}

// killable wraps a replica handler: while down, connections are severed
// at the TCP level (the closest in-process stand-in for a dead host) and
// probes fail, so the router's eviction path is exercised for real.
func killable(h http.Handler, down *atomic.Bool) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			if hj, ok := w.(http.Hijacker); ok {
				if conn, _, err := hj.Hijack(); err == nil {
					conn.Close()
					return
				}
			}
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		h.ServeHTTP(w, r)
	})
}

// selftestFleet builds a synthetic model in a temp dir and serves it
// from n replicas with deliberately tiny capacity so sheds actually
// happen; n > 1 fronts them with an in-process router.
func selftestFleet(name string, dims, n int) (*fleet, error) {
	ctx, cancel := context.WithCancel(context.Background())
	f := &fleet{ctx: ctx, cancel: cancel}

	dir, err := os.MkdirTemp("", "loadgen-selftest-")
	if err != nil {
		cancel()
		return nil, err
	}
	f.cleanups = append(f.cleanups, func() { os.RemoveAll(dir) })
	if err := writeSyntheticModel(filepath.Join(dir, name+".json"), dims); err != nil {
		f.cleanup()
		return nil, err
	}

	var backends []string
	for i := 0; i < n; i++ {
		s, err := server.New(server.Config{
			ModelDir:       dir,
			MaxBatch:       8,
			MaxWait:        2 * time.Millisecond,
			RequestTimeout: 250 * time.Millisecond,
			MaxInflight:    4,
			MaxQueue:       8,
			MaxQueueWait:   30 * time.Millisecond,
		})
		if err != nil {
			f.cleanup()
			return nil, err
		}
		down := &atomic.Bool{}
		ts := httptest.NewServer(killable(s.Handler(), down))
		f.down = append(f.down, down)
		f.cleanups = append(f.cleanups, func() { ts.Close(); s.Close() })
		backends = append(backends, ts.URL)
	}
	if n == 1 {
		f.url = backends[0]
		return f, nil
	}

	rt, err := router.New(router.Config{
		Backends:      backends,
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		f.cleanup()
		return nil, err
	}
	rt.Start(ctx, nil)
	ts := httptest.NewServer(rt.Handler())
	f.cleanups = append(f.cleanups, ts.Close)
	f.url = ts.URL
	return f, nil
}

// writeSyntheticModel drops a small valid model file at path.
func writeSyntheticModel(path string, dims int) error {
	protos := mat.NewDense(4, dims)
	for i := 0; i < 4; i++ {
		for j := 0; j < dims; j++ {
			protos.Set(i, j, float64(i)+0.1*float64(j))
		}
	}
	alpha := make([]float64, dims)
	for j := range alpha {
		alpha[j] = 1
	}
	m := &ifair.Model{Prototypes: protos, Alpha: alpha, P: 2, Kernel: ifair.ExpKernel, Loss: 0.5}
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(file); err != nil {
		file.Close()
		return err
	}
	return file.Close()
}
