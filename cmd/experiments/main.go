// Command experiments reproduces every table and figure of the paper's
// evaluation on the simulated datasets. Each experiment prints the same
// rows/series the paper reports.
//
// Usage:
//
//	experiments -run all            # everything
//	experiments -run table3         # one artefact: fig2 fig3 table2
//	                                # table3 table4 table5 fig4 fig5
//	experiments -full               # the paper's full Sec. V-B grid
//	experiments -seed 7 -records 1000
package main

import (
	"context"
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"syscall"

	"repro/internal/dataset"
	"repro/internal/optimize"
	"repro/internal/pipeline"
	"repro/internal/viz"
)

// csvDir, when non-empty, receives one CSV file per experiment so the
// figures can be re-plotted with any charting tool.
var csvDir string

// plotCharts enables ASCII chart rendering for the figure experiments.
var plotCharts bool

// writeSeries writes a CSV artefact if -csv was given.
func writeSeries(name string, headerRow []string, rows [][]string) error {
	if csvDir == "" {
		return nil
	}
	if err := os.MkdirAll(csvDir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(csvDir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(headerRow); err != nil {
		return err
	}
	for _, r := range rows {
		if err := w.Write(r); err != nil {
			return err
		}
	}
	w.Flush()
	return w.Error()
}

func f3(v float64) string { return strconv.FormatFloat(v, 'f', 4, 64) }

func main() {
	var (
		run     = flag.String("run", "all", "experiment to run: all, fig2, fig3, table2, table3, table4, table5, fig4, fig5, audit, agnostic")
		seed    = flag.Int64("seed", 42, "random seed for data simulation and training")
		full    = flag.Bool("full", false, "use the paper's full hyper-parameter grid (slow)")
		records = flag.Int("records", 0, "override simulated record count for classification datasets")
		csvOut  = flag.String("csv", "", "directory to write per-experiment CSV artefacts into")
		plot    = flag.Bool("plot", false, "render ASCII charts for fig3 and fig4")
		trace   = flag.Bool("trace", false, "print structured TRAIN lines for every optimizer restart to stderr")
		workers = flag.Int("workers", 1, "objective-evaluation goroutines per fit (results are bit-identical for any value)")
		ckptDir = flag.String("checkpoint-dir", "", "directory for crash-safe training snapshots; a killed study rerun with the same flags resumes bit-identically")
	)
	flag.Parse()
	csvDir = *csvOut
	plotCharts = *plot

	cfg := quickConfig(*seed)
	if *full {
		cfg = pipeline.PaperStudyConfig(*seed)
	}
	cfg.Parallel = runtime.NumCPU()
	cfg.Workers = *workers
	cfg.CheckpointDir = *ckptDir
	if *trace {
		cfg.Trace = &trainTrace{w: os.Stderr, workers: max(*workers, 1)}
	}

	// SIGINT/SIGTERM abort the current study; every fit in flight stops
	// within one optimizer iteration.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	experiments := map[string]func(context.Context, pipeline.StudyConfig, int) error{
		"table2":   runTable2,
		"fig2":     runFig2,
		"fig3":     runFig3,
		"table3":   runTable3,
		"table4":   runTable4,
		"table5":   runTable5,
		"fig4":     runFig4,
		"fig5":     runFig5,
		"audit":    runAudit,
		"agnostic": runAgnostic,
		"variance": runVariance,
	}
	order := []string{"table2", "fig2", "fig3", "table3", "table4", "table5", "fig4", "fig5", "audit", "agnostic", "variance"}

	var targets []string
	if *run == "all" {
		targets = order
	} else {
		for _, name := range strings.Split(*run, ",") {
			name = strings.TrimSpace(name)
			if _, ok := experiments[name]; !ok {
				fmt.Fprintf(os.Stderr, "unknown experiment %q (choose from %s)\n", name, strings.Join(order, ", "))
				os.Exit(2)
			}
			targets = append(targets, name)
		}
	}

	for _, name := range targets {
		if err := experiments[name](ctx, cfg, *records); err != nil {
			fmt.Fprintf(os.Stderr, "experiment %s failed: %v\n", name, err)
			os.Exit(1)
		}
	}
}

// trainTrace emits one structured line per optimizer event, suitable for
// grep/awk. Restarts train concurrently, so writes are mutex-guarded.
type trainTrace struct {
	mu      sync.Mutex
	w       io.Writer
	workers int // effective per-fit objective worker count
}

func (t *trainTrace) RestartStart(r int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "TRAIN event=restart-start restart=%d workers=%d\n", r, t.workers)
}

func (t *trainTrace) Iteration(r int, it optimize.Iteration) {
	t.mu.Lock()
	defer t.mu.Unlock()
	fmt.Fprintf(t.w, "TRAIN event=iteration restart=%d iter=%d loss=%.6g gradnorm=%.3g step=%.3g evals=%d\n",
		r, it.Iter, it.F, it.GradNorm, it.Step, it.Evals)
}

func (t *trainTrace) RestartEnd(r int, res optimize.Result, err error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if err != nil {
		fmt.Fprintf(t.w, "TRAIN event=restart-end restart=%d error=%q\n", r, err)
		return
	}
	fmt.Fprintf(t.w, "TRAIN event=restart-end restart=%d status=%q iters=%d loss=%.6g\n",
		r, res.Status, res.Iterations, res.F)
}

// quickConfig trades grid breadth for runtime; EXPERIMENTS.md documents the
// trimmed grid.
func quickConfig(seed int64) pipeline.StudyConfig {
	return pipeline.StudyConfig{
		Seed:          seed,
		Mixture:       []float64{0.1, 1, 10},
		K:             []int{10, 20, 30},
		Restarts:      2,
		MaxIterations: 100,
		L2:            0.01,
		TrainFrac:     1.0 / 3,
		ValFrac:       1.0 / 3,
	}
}

func classificationDatasets(cfg pipeline.StudyConfig, records int) []*dataset.Dataset {
	return []*dataset.Dataset{
		dataset.Compas(dataset.ClassificationConfig{Records: records, Seed: cfg.Seed}),
		dataset.Census(dataset.ClassificationConfig{Records: records, Seed: cfg.Seed}),
		dataset.Credit(dataset.ClassificationConfig{Records: records, Seed: cfg.Seed}),
	}
}

func rankingDatasets(cfg pipeline.StudyConfig) []*dataset.Dataset {
	return []*dataset.Dataset{
		dataset.Xing(dataset.UniformXingWeights, dataset.RankingConfig{Seed: cfg.Seed}),
		dataset.Airbnb(dataset.RankingConfig{Seed: cfg.Seed}),
	}
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runTable2(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Table II: dataset statistics (simulated equivalents)")
	fmt.Printf("%-10s %9s %6s %10s %12s %9s %8s\n",
		"Dataset", "Records", "Dims", "BaseRate+", "BaseRate-", "%Prot", "Queries")
	all := classificationDatasets(cfg, records)
	all = append(all, rankingDatasets(cfg)...)
	for _, ds := range all {
		s := ds.Summary()
		base := fmt.Sprintf("%10s %12s", "-", "-")
		if ds.Task == dataset.Classification {
			base = fmt.Sprintf("%10.2f %12.2f", s.BaseRateProtected, s.BaseRateUnprotected)
		}
		fmt.Printf("%-10s %9d %6d %s %8.1f%% %8d\n",
			s.Name, s.Records, s.Dims, base, 100*s.ProtectedShare, s.QueryCount)
	}
	return nil
}

func runFig2(ctx context.Context, cfg pipeline.StudyConfig, _ int) error {
	header("Figure 2: properties on synthetic data (Acc / yNN / Parity / EqOpp)")
	cells, err := pipeline.Fig2StudyContext(ctx, cfg)
	if err != nil {
		return err
	}
	fmt.Printf("%-10s %-10s %7s %7s %7s %7s\n", "Variant", "Method", "Acc", "yNN", "Parity", "EqOpp")
	var rows [][]string
	for _, c := range cells {
		fmt.Printf("%-10s %-10s %7.3f %7.3f %7.3f %7.3f\n", c.Variant, c.Method, c.Acc, c.YNN, c.Parity, c.EqOpp)
		rows = append(rows, []string{c.Variant, c.Method, f3(c.Acc), f3(c.YNN), f3(c.Parity), f3(c.EqOpp)})
	}
	return writeSeries("fig2", []string{"variant", "method", "acc", "ynn", "parity", "eqopp"}, rows)
}

func runFig3(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Figure 3: utility (AUC) vs individual fairness (yNN) trade-off")
	var rows [][]string
	for _, ds := range classificationDatasets(cfg, records) {
		results, err := pipeline.TradeoffStudyContext(ctx, ds, cfg)
		if err != nil {
			return err
		}
		fronts := pipeline.ParetoByMethod(results)
		onFront := map[int]bool{}
		for _, idx := range fronts {
			for _, i := range idx {
				onFront[i] = true
			}
		}
		fmt.Printf("\n-- %s: Pareto-optimal configurations per method --\n", ds.Name)
		fmt.Printf("%-12s %-24s %7s %7s\n", "Method", "Params", "AUC", "yNN")
		for _, method := range []string{"Full Data", "Masked Data", "SVD", "SVD-masked", "LFR", "iFair-a", "iFair-b"} {
			for _, i := range fronts[method] {
				r := results[i]
				fmt.Printf("%-12s %-24s %7.3f %7.3f\n", r.Method, r.Params, r.AUC, r.YNN)
			}
		}
		// The CSV artefact carries the full point cloud, not only fronts.
		for i, r := range results {
			if r.FitError != "" {
				continue
			}
			rows = append(rows, []string{ds.Name, r.Method, r.Params, f3(r.AUC), f3(r.YNN), strconv.FormatBool(onFront[i])})
		}
		if plotCharts {
			glyphs := map[string]rune{
				"Full Data": 'F', "Masked Data": 'M', "SVD": 's', "SVD-masked": 'v',
				"LFR": 'L', "iFair-a": 'a', "iFair-b": 'b',
			}
			var series []viz.Series
			for _, method := range []string{"Full Data", "Masked Data", "SVD", "SVD-masked", "LFR", "iFair-a", "iFair-b"} {
				s := viz.Series{Name: method, Glyph: glyphs[method]}
				for _, r := range results {
					if r.Method == method && r.FitError == "" {
						s.X = append(s.X, r.YNN)
						s.Y = append(s.Y, r.AUC)
					}
				}
				series = append(series, s)
			}
			fmt.Println(viz.Scatter(fmt.Sprintf("%s: AUC vs yNN", ds.Name), series, 60, 16, "yNN", "AUC"))
		}
	}
	return writeSeries("fig3", []string{"dataset", "method", "params", "auc", "ynn", "pareto"}, rows)
}

func runTable3(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Table III: classification detail under three tuning criteria")
	var csvRows [][]string
	for _, ds := range classificationDatasets(cfg, records) {
		rows, err := pipeline.Table3Context(ctx, ds, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s --\n", ds.Name)
		fmt.Printf("%-13s %-10s %6s %6s %7s %7s %6s\n", "Tuning", "Method", "Acc", "AUC", "EqOpp", "Parity", "yNN")
		for i, row := range rows {
			tuning := row.Criterion.String()
			if i == 0 {
				tuning = "Baseline"
			}
			r := row.Result
			fmt.Printf("%-13s %-10s %6.2f %6.2f %7.2f %7.2f %6.2f\n",
				tuning, r.Method, r.Acc, r.AUC, r.EqOpp, r.Parity, r.YNN)
			csvRows = append(csvRows, []string{ds.Name, tuning, r.Method, f3(r.Acc), f3(r.AUC), f3(r.EqOpp), f3(r.Parity), f3(r.YNN)})
		}
	}
	return writeSeries("table3", []string{"dataset", "tuning", "method", "acc", "auc", "eqopp", "parity", "ynn"}, csvRows)
}

func runTable4(ctx context.Context, cfg pipeline.StudyConfig, _ int) error {
	header("Table IV: sensitivity of iFair to ranking-score weights (Xing)")
	rows, err := pipeline.Table4Context(ctx, cfg, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%5s %5s %6s | %9s %6s %6s %6s %10s\n",
		"aWork", "aEdu", "aViews", "BaseRate+", "MAP", "KT", "yNN", "%Protected")
	var csvRows [][]string
	for _, r := range rows {
		fmt.Printf("%5.2f %5.2f %6.2f | %8.2f%% %6.2f %6.2f %6.2f %9.2f%%\n",
			r.Weights.Work, r.Weights.Education, r.Weights.Views,
			r.BaseRateProtected, r.MAP, r.KT, r.YNN, r.PctProtected)
		csvRows = append(csvRows, []string{
			f3(r.Weights.Work), f3(r.Weights.Education), f3(r.Weights.Views),
			f3(r.BaseRateProtected), f3(r.MAP), f3(r.KT), f3(r.YNN), f3(r.PctProtected),
		})
	}
	return writeSeries("table4", []string{"w_work", "w_edu", "w_views", "baserate_prot", "map", "kt", "ynn", "pct_protected"}, csvRows)
}

func runTable5(ctx context.Context, cfg pipeline.StudyConfig, _ int) error {
	header("Table V: ranking task (criterion Optimal)")
	fairPs := map[string][]float64{"xing": {0.5, 0.9}, "airbnb": {0.5, 0.6}}
	var csvRows [][]string
	for _, ds := range rankingDatasets(cfg) {
		results, err := pipeline.Table5Context(ctx, ds, cfg, fairPs[ds.Name])
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s (%d queries) --\n", ds.Name, len(ds.Queries))
		fmt.Printf("%-14s %6s %6s %6s %12s\n", "Method", "MAP", "KT", "yNN", "%Prot top10")
		for _, r := range results {
			if r.FitError != "" {
				fmt.Printf("%-14s fit error: %s\n", r.Method, r.FitError)
				continue
			}
			fmt.Printf("%-14s %6.2f %6.2f %6.2f %11.2f%%\n", r.Method, r.MAP, r.KT, r.YNN, r.PctProtected)
			csvRows = append(csvRows, []string{ds.Name, r.Method, f3(r.MAP), f3(r.KT), f3(r.YNN), f3(r.PctProtected)})
		}
	}
	return writeSeries("table5", []string{"dataset", "method", "map", "kt", "ynn", "pct_protected"}, csvRows)
}

func runFig4(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Figure 4: adversarial accuracy of predicting protected membership (lower is better)")
	fmt.Printf("%-10s %-12s %9s\n", "Dataset", "Method", "Adv. Acc")
	all := classificationDatasets(cfg, records)
	all = append(all, rankingDatasets(cfg)...)
	var csvRows [][]string
	var barLabels []string
	var barValues []float64
	for _, ds := range all {
		cells, err := pipeline.AdversarialStudyContext(ctx, ds, cfg)
		if err != nil {
			return err
		}
		for _, c := range cells {
			fmt.Printf("%-10s %-12s %9.3f\n", c.Dataset, c.Method, c.Accuracy)
			csvRows = append(csvRows, []string{c.Dataset, c.Method, f3(c.Accuracy)})
			barLabels = append(barLabels, c.Dataset+"/"+c.Method)
			barValues = append(barValues, c.Accuracy)
		}
	}
	if plotCharts {
		fmt.Println()
		fmt.Println(viz.Bars("adversarial accuracy (lower = better obfuscation)", barLabels, barValues, 40))
	}
	return writeSeries("fig4", []string{"dataset", "method", "adversarial_accuracy"}, csvRows)
}

func runAudit(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Definition-1 audit (extension): distance-preservation violations, held-out pairs")
	fmt.Printf("%-10s %-12s %9s %9s %9s %9s %9s\n",
		"Dataset", "Method", "mean", "p50", "p90", "p99", "eps(max)")
	all := classificationDatasets(cfg, records)
	all = append(all, rankingDatasets(cfg)...)
	var csvRows [][]string
	for _, ds := range all {
		rows, err := pipeline.AuditStudyContext(ctx, ds, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10s %-12s %9.3f %9.3f %9.3f %9.3f %9.3f\n",
				r.Dataset, r.Method, r.Result.MeanViolation, r.Result.P50, r.Result.P90, r.Result.P99, r.Result.MaxViolation)
			csvRows = append(csvRows, []string{r.Dataset, r.Method,
				f3(r.Result.MeanViolation), f3(r.Result.P50), f3(r.Result.P90), f3(r.Result.P99), f3(r.Result.MaxViolation)})
		}
	}
	return writeSeries("audit", []string{"dataset", "method", "mean", "p50", "p90", "p99", "epsilon"}, csvRows)
}

func runAgnostic(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Application-agnosticism (extension): same representation, different downstream models")
	fmt.Printf("%-10s %-12s %-12s %9s %7s\n", "Dataset", "Repr", "Downstream", "Utility", "yNN")
	all := classificationDatasets(cfg, records)
	all = append(all, rankingDatasets(cfg)...)
	var csvRows [][]string
	for _, ds := range all {
		rows, err := pipeline.AgnosticStudyContext(ctx, ds, cfg)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10s %-12s %-12s %9.3f %7.3f\n", r.Dataset, r.Representation, r.Downstream, r.Utility, r.YNN)
			csvRows = append(csvRows, []string{r.Dataset, r.Representation, r.Downstream, f3(r.Utility), f3(r.YNN)})
		}
	}
	return writeSeries("agnostic", []string{"dataset", "representation", "downstream", "utility", "ynn"}, csvRows)
}

func runVariance(ctx context.Context, cfg pipeline.StudyConfig, records int) error {
	header("Run-to-run variance (extension): mean ± std across 5 seeds")
	fmt.Printf("%-10s %-12s %14s %14s %8s %8s\n", "Dataset", "Method", "AUC", "yNN", "Parity", "EqOpp")
	seeds := []int64{cfg.Seed, cfg.Seed + 1, cfg.Seed + 2, cfg.Seed + 3, cfg.Seed + 4}
	gens := map[string]func(seed int64) *dataset.Dataset{
		"compas": func(seed int64) *dataset.Dataset {
			return dataset.Compas(dataset.ClassificationConfig{Records: records, Seed: seed})
		},
		"census": func(seed int64) *dataset.Dataset {
			return dataset.Census(dataset.ClassificationConfig{Records: records, Seed: seed})
		},
		"credit": func(seed int64) *dataset.Dataset {
			return dataset.Credit(dataset.ClassificationConfig{Records: records, Seed: seed})
		},
	}
	var csvRows [][]string
	for _, name := range []string{"compas", "census", "credit"} {
		rows, err := pipeline.RepeatStudyContext(ctx, gens[name], cfg, seeds)
		if err != nil {
			return err
		}
		for _, r := range rows {
			fmt.Printf("%-10s %-12s %6.3f ± %.3f %6.3f ± %.3f %8.3f %8.3f\n",
				name, r.Method, r.MeanAUC, r.StdAUC, r.MeanYNN, r.StdYNN, r.MeanParity, r.MeanEqOpp)
			csvRows = append(csvRows, []string{name, r.Method,
				f3(r.MeanAUC), f3(r.StdAUC), f3(r.MeanYNN), f3(r.StdYNN), f3(r.MeanParity), f3(r.MeanEqOpp)})
		}
	}
	return writeSeries("variance", []string{"dataset", "method", "mean_auc", "std_auc", "mean_ynn", "std_ynn", "mean_parity", "mean_eqopp"}, csvRows)
}

func runFig5(ctx context.Context, cfg pipeline.StudyConfig, _ int) error {
	header("Figure 5: FA*IR applied to iFair representations")
	ps := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
	var csvRows [][]string
	for _, ds := range rankingDatasets(cfg) {
		points, err := pipeline.PostProcessStudyContext(ctx, ds, cfg, ps)
		if err != nil {
			return err
		}
		fmt.Printf("\n-- %s --\n", ds.Name)
		fmt.Printf("%5s %7s %7s %12s\n", "p", "MAP", "yNN", "%Prot top10")
		for _, pt := range points {
			fmt.Printf("%5.1f %7.3f %7.3f %11.2f%%\n", pt.P, pt.MAP, pt.YNN, pt.PctInTop)
			csvRows = append(csvRows, []string{ds.Name, f3(pt.P), f3(pt.MAP), f3(pt.YNN), f3(pt.PctInTop)})
		}
	}
	return writeSeries("fig5", []string{"dataset", "p", "map", "ynn", "pct_protected_top10"}, csvRows)
}
