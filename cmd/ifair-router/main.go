// Command ifair-router is the scale-out serving tier: a reverse proxy
// that spreads /v1/models traffic across N ifair-server replicas with
// consistent hashing on model name@version (bounded-load spill) or pure
// least-loaded balancing, health-probe-driven replica eviction and
// re-admission, and admission awareness — a replica that sheds with
// Retry-After is cooled down and routed around, never retried into.
//
// Usage against two running replicas:
//
//	ifair-server -models ./models -addr :8081 &
//	ifair-server -models ./models -addr :8082 &
//	ifair-router -addr :8080 \
//	    -backends http://localhost:8081,http://localhost:8082
//	curl -s -X POST localhost:8080/v1/models/credit/transform \
//	     -d '{"rows": [[0.1, -1.2, 0.5]]}'
//
// Endpoints: everything the replicas serve (POST transform /
// probabilities, GET /v1/models, GET /v1/sync/manifest) plus the
// router's own /healthz, /readyz (ready while ≥ 1 replica is in
// rotation) and /metrics (per-replica goodput, evictions, re-admissions,
// reroutes, sync lag, process gauges).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/router"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifair-router:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr          = flag.String("addr", ":8080", "listen address")
		backends      = flag.String("backends", "", "comma-separated replica base URLs, e.g. http://h1:8081,http://h2:8081")
		balance       = flag.String("balance", "hash", "balancing policy: hash (consistent, bounded-load) or least-loaded")
		probeInterval = flag.Duration("probe-interval", 250*time.Millisecond, "/readyz polling cadence")
		probeTimeout  = flag.Duration("probe-timeout", 0, "probe round-trip bound (0 = probe-interval)")
		failAfter     = flag.Int("fail-after", 2, "consecutive failed probes before eviction")
		readmitAfter  = flag.Int("readmit-after", 2, "consecutive healthy probes before re-admission")
		timeout       = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		maxBody       = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		maxCooldown   = flag.Duration("max-cooldown", 5*time.Second, "cap on Retry-After route-around cooldowns")
		drain         = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests on shutdown")
	)
	flag.Parse()
	if *backends == "" {
		return errors.New("specify -backends url1,url2,...")
	}
	urls := strings.Split(*backends, ",")
	for i := range urls {
		urls[i] = strings.TrimSpace(urls[i])
	}

	cfg := router.Config{
		Backends:       urls,
		ProbeInterval:  *probeInterval,
		ProbeTimeout:   *probeTimeout,
		FailAfter:      *failAfter,
		ReadmitAfter:   *readmitAfter,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxCooldown:    *maxCooldown,
	}
	switch *balance {
	case "hash":
		// The default balancer is built by router.New over the fleet.
	case "least-loaded":
		cfg.Balancer = router.LeastLoaded{}
	default:
		return fmt.Errorf("unknown -balance %q (want hash or least-loaded)", *balance)
	}

	rt, err := router.New(cfg)
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx, log.Printf)

	srv := &http.Server{
		Addr:              *addr,
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("routing across %d replica(s) on %s (%s balancing, probe every %v, evict after %d, readmit after %d)",
			len(urls), *addr, *balance, *probeInterval, *failAfter, *readmitAfter)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining in-flight requests (up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	log.Printf("drained cleanly, bye")
	return nil
}
