// Command ifair-server serves fitted iFair models over HTTP — the
// paper's "train once, use the learned representation for arbitrary
// downstream applications" deployment story as a long-lived service.
//
// Models are JSON files written by `ifair -save` (or Model.Encode),
// placed in a directory as `<name>.json` or `<name>@v<version>.json`;
// the newest version of each name serves by default and the directory
// is rescanned periodically, so new model versions go live without a
// restart.
//
// Usage:
//
//	ifair -dataset credit -k 10 -save models/credit.json
//	ifair-server -models ./models -addr :8080
//	curl -s localhost:8080/v1/models
//	curl -s -X POST localhost:8080/v1/models/credit/transform \
//	     -d '{"rows": [[0.1, -1.2, 0.5]]}'
//
// Endpoints: POST /v1/models/{name}/transform (micro-batched),
// POST /v1/models/{name}/probabilities, GET /v1/models, GET /healthz,
// GET /readyz, GET /metrics. SIGINT/SIGTERM drain in-flight requests
// before exit.
//
// With -rollout, new model versions do not serve immediately: the guard
// loop adopts each as a canary on a deterministic slice of traffic
// (keyed by X-Canary-Key or a row hash), watches live input drift (PSI
// against the model's fit-time `<name>.profile`), a live yNN-consistency
// estimate per arm, error rates and latency, then auto-promotes after a
// healthy window or rolls back and quarantines the version. See the
// README's "Closed-loop rollout" section.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "ifair-server:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		models   = flag.String("models", "", "directory of model JSON files (<name>.json or <name>@v<version>.json)")
		maxBatch = flag.Int("max-batch", 32, "micro-batcher flush threshold (rows)")
		maxWait  = flag.Duration("max-wait", 2*time.Millisecond, "micro-batcher window; 0 disables coalescing")
		workers  = flag.Int("workers", runtime.GOMAXPROCS(0), "worker-pool width for batched transforms")
		timeout  = flag.Duration("timeout", 10*time.Second, "per-request timeout")
		reload   = flag.Duration("reload", 10*time.Second, "model directory rescan interval; 0 disables hot reload")
		drain    = flag.Duration("drain", 15*time.Second, "max time to drain in-flight requests on shutdown")
		maxBody  = flag.Int64("max-body", 8<<20, "request body size limit in bytes")
		maxRows  = flag.Int("max-rows", 10000, "maximum rows per batch request")

		syncFrom  = flag.String("sync-from", "", "origin server base URL to pull model files from (replica mode)")
		syncEvery = flag.Duration("sync-every", 10*time.Second, "model-dir sync interval when -sync-from is set")
		syncPrune = flag.Bool("sync-prune", false, "also remove local model files the sync origin no longer has")

		rollout      = flag.Bool("rollout", false, "closed-loop canary guard: new model versions canary on a traffic slice and auto-promote or roll back")
		canaryFrac   = flag.Float64("canary-fraction", 0, "rollout: share of traffic on the canary arm (0 = default 0.1)")
		canaryWindow = flag.Duration("canary-window", 0, "rollout: healthy observation window before promotion (0 = default 1m)")
		canaryMinReq = flag.Int64("canary-min-requests", 0, "rollout: minimum canary-arm requests before any verdict (0 = default 200)")
		driftPSI     = flag.Float64("drift-psi", 0, "rollout: per-feature PSI alarm threshold (0 = default 0.25)")
		guardTick    = flag.Duration("guard-tick", 0, "rollout: guard-loop evaluation period (0 = default 1s)")

		maxInflight  = flag.Int("max-inflight", 0, "admission: concurrent transform/probabilities requests (0 = 8×GOMAXPROCS)")
		maxQueue     = flag.Int("max-queue", 0, "admission: waiting requests beyond the inflight cap (0 = 2×inflight, negative disables queueing)")
		queueWait    = flag.Duration("queue-wait", 0, "admission: max time a request may queue before being shed (0 = timeout/2, negative disables)")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on shed (429/503) responses")
		flushWorkers = flag.Int("flush-workers", 0, "batcher: flush goroutine pool size (0 = workers)")
		maxPending   = flag.Int("max-pending", 0, "batcher: pending-row cap per model before shedding (0 = 16×max-batch, negative unlimited)")
		float32Repr  = flag.Bool("float32", false, "compile serving kernels to float32 (half the parameter bandwidth, ~2e-3 output tolerance)")
	)
	flag.Parse()
	if *models == "" {
		return errors.New("specify -models <dir>")
	}

	var rolloutCfg *server.RolloutConfig
	if *rollout {
		rolloutCfg = &server.RolloutConfig{
			Fraction:     *canaryFrac,
			Window:       *canaryWindow,
			MinRequests:  *canaryMinReq,
			DriftPSI:     *driftPSI,
			TickInterval: *guardTick,
			Logf:         log.Printf,
		}
	}

	s, err := server.New(server.Config{
		ModelDir:       *models,
		MaxBatch:       *maxBatch,
		MaxWait:        *maxWait,
		Workers:        *workers,
		RequestTimeout: *timeout,
		MaxBodyBytes:   *maxBody,
		MaxRows:        *maxRows,
		MaxInflight:    *maxInflight,
		MaxQueue:       *maxQueue,
		MaxQueueWait:   *queueWait,
		RetryAfter:     *retryAfter,
		FlushWorkers:   *flushWorkers,
		MaxPending:     *maxPending,
		Float32:        *float32Repr,
		Rollout:        rolloutCfg,
	})
	if err != nil {
		// A partial load (some corrupt files) is survivable; an empty
		// registry is not worth starting for.
		if s == nil {
			return err
		}
		log.Printf("warning: %v", err)
	}
	for _, info := range s.Registry().List() {
		log.Printf("loaded model %s@v%d (K=%d, N=%d) from %s", info.Name, info.Version, info.K, info.N, info.FileName)
	}
	if s.Registry().Len() == 0 {
		log.Printf("warning: no models in %s yet; serving will begin once the watcher finds some", *models)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *reload > 0 {
		go s.Registry().Watch(ctx, *reload, log.Printf)
	}
	if *rollout {
		// The guard loop adopts newly reloaded/synced versions as canaries
		// and promotes or rolls them back; without it new versions would
		// stay pinned out of the serving path.
		log.Printf("canary guard enabled (drift profiles from %s/<name>.profile)", *models)
		go s.Rollouts().Run(ctx)
	}
	if *syncFrom != "" {
		syncer := &server.Syncer{
			Source: &server.Client{BaseURL: *syncFrom},
			Dir:    *models,
			Prune:  *syncPrune,
		}
		m := s.Metrics()
		syncer.Counters.Synced = m.Counter("model_sync_files_total")
		syncer.Counters.Skipped = m.Counter("model_sync_skipped_total")
		syncer.Counters.Pruned = m.Counter("model_sync_pruned_total")
		syncer.Counters.Errors = m.Counter("model_sync_errors_total")
		log.Printf("pulling model dir from %s every %v (prune=%v)", *syncFrom, *syncEvery, *syncPrune)
		go syncer.Watch(ctx, *syncEvery, log.Printf)
	}

	srv := &http.Server{
		Addr:              *addr,
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() {
		log.Printf("serving %d model(s) on %s (batch ≤ %d rows, window %v, %d workers)",
			s.Registry().Len(), *addr, *maxBatch, *maxWait, *workers)
		errCh <- srv.ListenAndServe()
	}()

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	log.Printf("signal received, draining in-flight requests (up to %v)", *drain)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(drainCtx); err != nil {
		return fmt.Errorf("drain incomplete: %w", err)
	}
	s.Close()
	log.Printf("drained cleanly, bye")
	return nil
}
