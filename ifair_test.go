package repro

import (
	"context"
	"errors"
	"math"
	"strings"
	"sync"
	"testing"
)

// TestFacadeEndToEnd exercises the public API exactly the way the README
// quickstart does: simulate data, learn a representation, transform,
// measure.
func TestFacadeEndToEnd(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 300, Seed: 1})
	model, err := Fit(ds.X, Options{
		K:         5,
		Lambda:    1,
		Mu:        1,
		Protected: ds.ProtectedCols,
		Init:      IFairB,
		Fairness:  SampledFairness,
		Seed:      1,
	})
	if err != nil {
		t.Fatal(err)
	}
	xt := model.Transform(ds.X)
	if r, c := xt.Dims(); r != ds.Rows() || c != ds.Cols() {
		t.Fatalf("transform dims %d×%d", r, c)
	}
}

// facadeTrace counts optimizer events through the public Trace surface.
type facadeTrace struct {
	mu                  sync.Mutex
	starts, iters, ends int
}

func (f *facadeTrace) RestartStart(int) {
	f.mu.Lock()
	f.starts++
	f.mu.Unlock()
}

func (f *facadeTrace) Iteration(int, Iteration) {
	f.mu.Lock()
	f.iters++
	f.mu.Unlock()
}

func (f *facadeTrace) RestartEnd(int, OptResult, error) {
	f.mu.Lock()
	f.ends++
	f.mu.Unlock()
}

// TestFacadeContextAPI exercises FitContext end to end: parallel restarts
// reproduce the serial model bit for bit, the Trace observes every
// restart, and a cancelled context aborts the fit.
func TestFacadeContextAPI(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 200, Seed: 3})
	opts := Options{
		K: 4, Lambda: 1, Mu: 1,
		Protected: ds.ProtectedCols,
		Init:      IFairB, Fairness: SampledFairness,
		Restarts: 4, MaxIterations: 30, Seed: 9,
	}
	serial, err := Fit(ds.X, opts)
	if err != nil {
		t.Fatal(err)
	}

	tr := &facadeTrace{}
	par := opts
	par.RestartWorkers = 4
	par.Trace = tr
	parallel, err := FitContext(context.Background(), ds.X, par)
	if err != nil {
		t.Fatal(err)
	}
	if serial.Loss != parallel.Loss {
		t.Fatalf("parallel loss %v != serial loss %v", parallel.Loss, serial.Loss)
	}
	if tr.starts != opts.Restarts || tr.ends != opts.Restarts || tr.iters == 0 {
		t.Fatalf("trace saw starts=%d iters=%d ends=%d", tr.starts, tr.iters, tr.ends)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := FitContext(ctx, ds.X, opts); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FitContext err = %v, want context.Canceled", err)
	}
	if _, err := FitCensoredContext(ctx, ds.X, ds.Protected, CensoredOptions{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FitCensoredContext err = %v, want context.Canceled", err)
	}
	if _, err := FitLFRContext(ctx, ds.X, ds.Label, ds.Protected, LFROptions{K: 3, Az: 1, Ax: 1, Ay: 1, MaxIterations: 10, Seed: 1}); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled FitLFRContext err = %v, want context.Canceled", err)
	}
}

// TestFacadeCheckedTransforms covers the error-returning transform surface
// the quickstart uses.
func TestFacadeCheckedTransforms(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 120, Seed: 8})
	model, err := Fit(ds.X, Options{K: 3, Lambda: 1, Mu: 1, Protected: ds.ProtectedCols, Seed: 1, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	xt, err := Transform(model, ds.X)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := xt.Dims(); r != ds.Rows() || c != ds.Cols() {
		t.Fatalf("Transform dims %d×%d", r, c)
	}
	row, err := TransformRow(model, ds.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	for j := range row {
		if row[j] != xt.At(0, j) {
			t.Fatal("TransformRow disagrees with Transform")
		}
	}
	u, err := Probabilities(model, ds.X.Row(0))
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	for _, v := range u {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("membership distribution sums to %v", sum)
	}
	if _, err := TransformRow(model, []float64{1}); err == nil {
		t.Fatal("short record should error, not panic")
	}
	if _, err := Probabilities(model, make([]float64, ds.Cols()+1)); err == nil {
		t.Fatal("long record should error, not panic")
	}
	if _, err := Transform(model, NewMatrix(2, ds.Cols()+1)); err == nil {
		t.Fatal("wrong-width matrix should error, not panic")
	}
}

func TestFacadeBaselines(t *testing.T) {
	ds := Compas(ClassificationConfig{Records: 200, Seed: 2})
	lfrModel, err := FitLFR(ds.X, ds.Label, ds.Protected, LFROptions{K: 4, Az: 1, Ax: 1, Ay: 1, MaxIterations: 20, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := lfrModel.Transform(ds.X).Rows(); got != 200 {
		t.Fatalf("LFR transform rows = %d", got)
	}

	rr, err := FairReRank([]float64{0.9, 0.4, 0.7}, []bool{false, true, false}, 0, 0.5, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rr.Ranking) != 3 {
		t.Fatalf("ranking length %d", len(rr.Ranking))
	}
}

func TestFacadeMetrics(t *testing.T) {
	if got := Accuracy([]float64{0.9, 0.1}, []bool{true, false}); got != 1 {
		t.Fatalf("Accuracy = %v", got)
	}
	if got := KendallTau([]float64{1, 2, 3}, []float64{1, 2, 3}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("KendallTau = %v", got)
	}
}

func TestFacadeSplitAndMatrix(t *testing.T) {
	m := MatrixFromRows([][]float64{{1, 2}, {3, 4}})
	if m.At(1, 1) != 4 {
		t.Fatal("MatrixFromRows broken")
	}
	if NewMatrix(2, 3).Cols() != 3 {
		t.Fatal("NewMatrix broken")
	}
	s, err := ThreeWaySplit(30, 0.5, 0.25, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Train)+len(s.Validation)+len(s.Test) != 30 {
		t.Fatal("split does not partition")
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 120, Seed: 4})
	model, err := Fit(ds.X, Options{K: 3, Lambda: 1, Mu: 1, Protected: ds.ProtectedCols, Seed: 1, MaxIterations: 15})
	if err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := model.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := DecodeModel(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	a := model.TransformRow(ds.X.Row(0))
	b := loaded.TransformRow(ds.X.Row(0))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("loaded model transforms differently")
		}
	}
}

func TestFacadeKDTreeMatchesIndex(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 80, Seed: 5})
	tree := NewKDTree(ds.X)
	brute := NewNeighbourIndex(ds.X)
	for i := 0; i < 10; i++ {
		a := tree.Neighbors(i, 5)
		b := brute.Neighbors(i, 5)
		for j := range b {
			if a[j] != b[j] {
				t.Fatal("KD-tree neighbours differ from brute force")
			}
		}
	}
}

func TestFacadeLipschitzAudit(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 60, Seed: 6})
	res := LipschitzAudit(ds.X, ds.X, nil)
	if res.MaxViolation != 0 {
		t.Fatalf("identity audit epsilon = %v, want 0", res.MaxViolation)
	}
}

func TestFacadeKernelConstants(t *testing.T) {
	ds := Credit(ClassificationConfig{Records: 80, Seed: 7})
	model, err := Fit(ds.X, Options{K: 3, Lambda: 1, Mu: 1, Kernel: InverseKernel, Seed: 1, MaxIterations: 10})
	if err != nil {
		t.Fatal(err)
	}
	if model.Kernel != InverseKernel {
		t.Fatal("kernel option not honoured")
	}
	if ExpKernel == InverseKernel {
		t.Fatal("kernel constants must differ")
	}
}

func TestFacadeSyntheticAndStudyTypes(t *testing.T) {
	ds := SyntheticMixture(VariantCorrelatedX2, 60, 3)
	if ds.Rows() != 60 {
		t.Fatal("synthetic size wrong")
	}
	cfg := PaperStudyConfig(1)
	if len(cfg.Mixture) != 6 || len(cfg.K) != 3 || cfg.Restarts != 3 {
		t.Fatalf("PaperStudyConfig = %+v does not match Sec. V-B", cfg)
	}
}
